#include "core/spatial_index.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace proxdet {

namespace {

// Query-side padding, relative to the cell size: absorbs the one-ulp
// rounding of the range arithmetic (coordinates are meters, so a
// cell-size-relative 1e-9 is many orders of magnitude above the ulp of any
// realistic coordinate while staying far below any alert radius). Padding
// only ever *adds* candidate cells — the exact predicates downstream filter
// them — so it is always sound.
constexpr double kQueryPadRel = 1e-9;

// SplitMix64 finalizer: the same deterministic integer mix the hash ring
// uses; cheap and platform-independent.
uint64_t MixKey(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

int32_t FloorCell(double coord, double inv_cell_size) {
  const double f = std::floor(coord * inv_cell_size);
  // Clamp to a safe integer band; worlds are meters-scale, so saturation
  // only triggers on garbage input and still yields a consistent cell.
  constexpr double kLim = 1e9;
  if (f >= kLim) return static_cast<int32_t>(kLim);
  if (f <= -kLim) return static_cast<int32_t>(-kLim);
  return static_cast<int32_t>(f);
}

}  // namespace

// ---------------------------------------------------------------------------
// UniformGridIndex

UniformGridIndex::UniformGridIndex(double cell_size) {
  cell_size_ = cell_size > 0.0 ? cell_size : 1.0;
  inv_cell_size_ = 1.0 / cell_size_;
  table_.resize(64);
}

CellCoord UniformGridIndex::CellOf(const Vec2& p) const {
  return {FloorCell(p.x, inv_cell_size_), FloorCell(p.y, inv_cell_size_)};
}

void UniformGridIndex::SetCellSize(double cell_size) {
  const double next = cell_size > 0.0 ? cell_size : 1.0;
  if (next == cell_size_) return;
  cell_size_ = next;
  inv_cell_size_ = 1.0 / next;
  stats_.rebuilds += 1;
  // Rebucket every live id under the new tiling. Bucket storage and the
  // cell table restart empty (old cells are meaningless now).
  buckets_.clear();
  table_.assign(64, TableSlot{});
  table_used_ = 0;
  for (size_t id = 0; id < entries_.size(); ++id) {
    Entry& e = entries_[id];
    if (!e.live()) continue;
    e.cell = CellOf(e.pos);
    e.bucket = BucketFor(e.cell);
    e.bucket_slot = static_cast<uint32_t>(buckets_[e.bucket].size());
    buckets_[e.bucket].push_back(static_cast<int32_t>(id));
  }
}

uint32_t UniformGridIndex::FindBucket(const CellCoord& cell) const {
  const uint64_t key = PackCell(cell);
  const size_t mask = table_.size() - 1;
  size_t i = MixKey(key) & mask;
  while (table_[i].used) {
    if (table_[i].key == key) return table_[i].bucket;
    i = (i + 1) & mask;
  }
  return std::numeric_limits<uint32_t>::max();
}

void UniformGridIndex::TableInsert(uint64_t key, uint32_t bucket) {
  const size_t mask = table_.size() - 1;
  size_t i = MixKey(key) & mask;
  while (table_[i].used) i = (i + 1) & mask;
  table_[i] = {key, bucket, true};
  ++table_used_;
}

void UniformGridIndex::GrowTable() {
  std::vector<TableSlot> old = std::move(table_);
  table_.assign(old.size() * 2, TableSlot{});
  table_used_ = 0;
  for (const TableSlot& slot : old) {
    if (slot.used) TableInsert(slot.key, slot.bucket);
  }
}

uint32_t UniformGridIndex::BucketFor(const CellCoord& cell) {
  const uint32_t found = FindBucket(cell);
  if (found != std::numeric_limits<uint32_t>::max()) return found;
  if ((table_used_ + 1) * 2 > table_.size()) GrowTable();
  const uint32_t bucket = static_cast<uint32_t>(buckets_.size());
  buckets_.emplace_back();
  TableInsert(PackCell(cell), bucket);
  return bucket;
}

void UniformGridIndex::RemoveFromBucket(Entry& e) {
  std::vector<int32_t>& bucket = buckets_[e.bucket];
  const int32_t moved = bucket.back();
  bucket[e.bucket_slot] = moved;
  bucket.pop_back();
  if (moved >= 0 && static_cast<size_t>(moved) < entries_.size() &&
      entries_[moved].bucket == e.bucket) {
    entries_[moved].bucket_slot = e.bucket_slot;
  }
}

void UniformGridIndex::Upsert(int32_t id, const Vec2& p) {
  if (id < 0) return;
  if (static_cast<size_t>(id) >= entries_.size()) {
    entries_.resize(static_cast<size_t>(id) + 1);
  }
  stats_.upserts += 1;
  Entry& e = entries_[id];
  const CellCoord cell = CellOf(p);
  if (e.live()) {
    e.pos = p;
    if (cell == e.cell) return;  // Same cell: position refresh only.
    RemoveFromBucket(e);
    stats_.moves += 1;
  } else {
    e.pos = p;
    ++live_count_;
  }
  e.cell = cell;
  e.bucket = BucketFor(cell);
  e.bucket_slot = static_cast<uint32_t>(buckets_[e.bucket].size());
  buckets_[e.bucket].push_back(id);
}

void UniformGridIndex::Remove(int32_t id) {
  if (id < 0 || static_cast<size_t>(id) >= entries_.size()) return;
  Entry& e = entries_[id];
  if (!e.live()) return;
  RemoveFromBucket(e);
  e.bucket = kNoBucket;
  --live_count_;
  stats_.removes += 1;
}

bool UniformGridIndex::Contains(int32_t id) const {
  return id >= 0 && static_cast<size_t>(id) < entries_.size() &&
         entries_[id].live();
}

uint64_t UniformGridIndex::Query(const Vec2& center, double radius,
                                 std::vector<int32_t>* out) const {
  const double r = radius + cell_size_ * kQueryPadRel;
  const CellCoord lo = CellOf({center.x - r, center.y - r});
  const CellCoord hi = CellOf({center.x + r, center.y + r});
  uint64_t cells = 0;
  for (int32_t cy = lo.y; cy <= hi.y; ++cy) {
    for (int32_t cx = lo.x; cx <= hi.x; ++cx) {
      ++cells;
      const uint32_t bucket = FindBucket({cx, cy});
      if (bucket == std::numeric_limits<uint32_t>::max()) continue;
      const std::vector<int32_t>& ids = buckets_[bucket];
      out->insert(out->end(), ids.begin(), ids.end());
    }
  }
  return cells;
}

std::vector<std::pair<int32_t, Vec2>> UniformGridIndex::SortedEntries() const {
  std::vector<std::pair<int32_t, Vec2>> out;
  out.reserve(live_count_);
  for (size_t id = 0; id < entries_.size(); ++id) {
    if (entries_[id].live()) {
      out.emplace_back(static_cast<int32_t>(id), entries_[id].pos);
    }
  }
  return out;  // Dense scan by id: already sorted.
}

// ---------------------------------------------------------------------------
// RegionGridIndex

RegionGridIndex::RegionGridIndex(double cell_size) {
  cell_size_ = cell_size > 0.0 ? cell_size : 1.0;
  inv_cell_size_ = 1.0 / cell_size_;
  table_.resize(64);
}

CellRange RegionGridIndex::RangeOf(const BBox& box) const {
  CellRange range;
  range.lo = {FloorCell(box.lo.x, inv_cell_size_),
              FloorCell(box.lo.y, inv_cell_size_)};
  range.hi = {FloorCell(box.hi.x, inv_cell_size_),
              FloorCell(box.hi.y, inv_cell_size_)};
  return range;
}

void RegionGridIndex::SetCellSize(double cell_size) {
  const double next = cell_size > 0.0 ? cell_size : 1.0;
  if (next == cell_size_) return;
  cell_size_ = next;
  inv_cell_size_ = 1.0 / next;
  stats_.rebuilds += 1;
  buckets_.clear();
  table_.assign(64, TableSlot{});
  table_used_ = 0;
  for (size_t h = 0; h < entries_.size(); ++h) {
    Entry& e = entries_[h];
    if (!e.live) continue;
    e.range = RangeOf(e.box);
    InsertIntoCells(static_cast<int32_t>(h), e.range);
  }
}

uint32_t RegionGridIndex::FindBucket(const CellCoord& cell) const {
  const uint64_t key = PackCell(cell);
  const size_t mask = table_.size() - 1;
  size_t i = MixKey(key) & mask;
  while (table_[i].used) {
    if (table_[i].key == key) return table_[i].bucket;
    i = (i + 1) & mask;
  }
  return std::numeric_limits<uint32_t>::max();
}

void RegionGridIndex::TableInsert(uint64_t key, uint32_t bucket) {
  const size_t mask = table_.size() - 1;
  size_t i = MixKey(key) & mask;
  while (table_[i].used) i = (i + 1) & mask;
  table_[i] = {key, bucket, true};
  ++table_used_;
}

void RegionGridIndex::GrowTable() {
  std::vector<TableSlot> old = std::move(table_);
  table_.assign(old.size() * 2, TableSlot{});
  table_used_ = 0;
  for (const TableSlot& slot : old) {
    if (slot.used) TableInsert(slot.key, slot.bucket);
  }
}

uint32_t RegionGridIndex::BucketFor(const CellCoord& cell) {
  const uint32_t found = FindBucket(cell);
  if (found != std::numeric_limits<uint32_t>::max()) return found;
  if ((table_used_ + 1) * 2 > table_.size()) GrowTable();
  const uint32_t bucket = static_cast<uint32_t>(buckets_.size());
  buckets_.emplace_back();
  TableInsert(PackCell(cell), bucket);
  return bucket;
}

void RegionGridIndex::InsertIntoCells(int32_t handle, const CellRange& range) {
  for (int32_t cy = range.lo.y; cy <= range.hi.y; ++cy) {
    for (int32_t cx = range.lo.x; cx <= range.hi.x; ++cx) {
      buckets_[BucketFor({cx, cy})].push_back(handle);
    }
  }
}

void RegionGridIndex::RemoveFromCells(int32_t handle, const CellRange& range) {
  for (int32_t cy = range.lo.y; cy <= range.hi.y; ++cy) {
    for (int32_t cx = range.lo.x; cx <= range.hi.x; ++cx) {
      const uint32_t b = FindBucket({cx, cy});
      if (b == std::numeric_limits<uint32_t>::max()) continue;
      std::vector<int32_t>& bucket = buckets_[b];
      for (size_t i = 0; i < bucket.size(); ++i) {
        if (bucket[i] == handle) {
          bucket[i] = bucket.back();
          bucket.pop_back();
          break;
        }
      }
    }
  }
}

void RegionGridIndex::Upsert(int32_t handle, const BBox& box) {
  if (handle < 0) return;
  if (static_cast<size_t>(handle) >= entries_.size()) {
    entries_.resize(static_cast<size_t>(handle) + 1);
  }
  stats_.upserts += 1;
  Entry& e = entries_[handle];
  const CellRange range = RangeOf(box);
  if (e.live) {
    e.box = box;
    if (range == e.range) return;  // Same cells: bounds refresh only.
    RemoveFromCells(handle, e.range);
    stats_.moves += 1;
  } else {
    e.live = true;
    e.box = box;
    ++live_count_;
  }
  e.range = range;
  InsertIntoCells(handle, range);
}

void RegionGridIndex::Remove(int32_t handle) {
  if (handle < 0 || static_cast<size_t>(handle) >= entries_.size()) return;
  Entry& e = entries_[handle];
  if (!e.live) return;
  RemoveFromCells(handle, e.range);
  e.live = false;
  --live_count_;
  stats_.removes += 1;
}

bool RegionGridIndex::Contains(int32_t handle) const {
  return handle >= 0 && static_cast<size_t>(handle) < entries_.size() &&
         entries_[handle].live;
}

uint64_t RegionGridIndex::Query(const BBox& box, double slack,
                                std::vector<int32_t>* out) const {
  const double s = slack + cell_size_ * kQueryPadRel;
  BBox probe = box;
  probe.Inflate(s);
  const CellRange range = RangeOf(probe);
  uint64_t cells = 0;
  for (int32_t cy = range.lo.y; cy <= range.hi.y; ++cy) {
    for (int32_t cx = range.lo.x; cx <= range.hi.x; ++cx) {
      ++cells;
      const uint32_t bucket = FindBucket({cx, cy});
      if (bucket == std::numeric_limits<uint32_t>::max()) continue;
      const std::vector<int32_t>& handles = buckets_[bucket];
      out->insert(out->end(), handles.begin(), handles.end());
    }
  }
  return cells;
}

std::vector<std::pair<int32_t, CellRange>> RegionGridIndex::SortedEntries()
    const {
  std::vector<std::pair<int32_t, CellRange>> out;
  out.reserve(live_count_);
  for (size_t h = 0; h < entries_.size(); ++h) {
    if (entries_[h].live) {
      out.emplace_back(static_cast<int32_t>(h), entries_[h].range);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// MatchCellClassifier

MatchCellClassifier::MatchCellClassifier(const Circle& circle,
                                         double cell_size) {
  cell_size_ = cell_size > 0.0 ? cell_size : 1.0;
  inv_cell_size_ = 1.0 / cell_size_;
  circle_ = circle;
  const double pad =
      kMargin * (std::abs(circle.center.x) + std::abs(circle.center.y) +
                 circle.radius + cell_size_);
  // Outer: every cell overlapping the padded AABB. A point outside these
  // cells is > radius away on at least one axis, so the exact strict
  // predicate is certainly false for it.
  const double ro = circle.radius + pad;
  outer_.lo = {FloorCell(circle.center.x - ro, inv_cell_size_),
               FloorCell(circle.center.y - ro, inv_cell_size_)};
  outer_.hi = {FloorCell(circle.center.x + ro, inv_cell_size_),
               FloorCell(circle.center.y + ro, inv_cell_size_)};
  // Inner: cells strictly interior to the axis-aligned square inscribed in
  // the circle deflated by the margin. Every point of such a cell is at
  // distance <= r * (1 - kMargin) from the center, which clears the exact
  // predicate's worst-case rounding by ~15 decimal orders.
  const double ri = circle.radius * (1.0 - kMargin);
  const double half = ri / std::sqrt(2.0) - pad;
  if (half > 0.0) {
    inner_.lo = {FloorCell(circle.center.x - half, inv_cell_size_) + 1,
                 FloorCell(circle.center.y - half, inv_cell_size_) + 1};
    inner_.hi = {FloorCell(circle.center.x + half, inv_cell_size_) - 1,
                 FloorCell(circle.center.y + half, inv_cell_size_) - 1};
  } else {
    inner_ = CellRange{{0, 0}, {-1, -1}};  // Empty.
  }
}

MatchCellClassifier::Verdict MatchCellClassifier::Classify(
    const Vec2& p) const {
  const CellCoord cell = {FloorCell(p.x, inv_cell_size_),
                          FloorCell(p.y, inv_cell_size_)};
  if (!outer_.ContainsCell(cell)) return kOutside;
  if (inner_.ContainsCell(cell)) return kInside;
  return kBoundary;
}

}  // namespace proxdet
