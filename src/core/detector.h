#ifndef PROXDET_CORE_DETECTOR_H_
#define PROXDET_CORE_DETECTOR_H_

#include <string>
#include <vector>

#include "core/comm_stats.h"
#include "core/events.h"
#include "core/world.h"

namespace proxdet {

class ClientLink;

/// A continuous proximity detection strategy. `Run` simulates the full
/// client-server protocol over the world and records every message in
/// `stats()`. Correctness contract: `SortedAlerts()` must equal
/// `world.GroundTruthAlerts()` for every world — safe regions trade
/// communication for bookkeeping, never for missed or spurious alerts.
class Detector {
 public:
  virtual ~Detector() = default;

  virtual std::string name() const = 0;
  virtual void Run(const World& world) = 0;

  const CommStats& stats() const { return stats_; }
  std::vector<AlertEvent> SortedAlerts() const {
    std::vector<AlertEvent> out = alerts_;
    SortAlerts(&out);
    return out;
  }

  /// Routes every protocol message of the next Run through `link` (the
  /// transported mode, src/net/). nullptr restores the in-process fast
  /// path. Not owned; must outlive the Run it is installed for.
  void set_link(ClientLink* link) { link_ = link; }
  ClientLink* link() const { return link_; }

 protected:
  CommStats stats_;
  std::vector<AlertEvent> alerts_;
  ClientLink* link_ = nullptr;
};

/// The Naive baseline (Sec. VI-C): every user reports every epoch, the
/// server recomputes all pair distances. No probing, maximal reporting.
class NaiveDetector : public Detector {
 public:
  std::string name() const override { return "Naive"; }
  void Run(const World& world) override;
};

}  // namespace proxdet

#endif  // PROXDET_CORE_DETECTOR_H_
