#ifndef PROXDET_CORE_DETECTOR_H_
#define PROXDET_CORE_DETECTOR_H_

#include <string>
#include <vector>

#include "core/comm_stats.h"
#include "core/events.h"
#include "core/spatial_index.h"
#include "core/world.h"

namespace proxdet {

class ClientLink;

/// A continuous proximity detection strategy. `Run` simulates the full
/// client-server protocol over the world and records every message in
/// `stats()`. Correctness contract: `SortedAlerts()` must equal
/// `world.GroundTruthAlerts()` for every world — safe regions trade
/// communication for bookkeeping, never for missed or spurious alerts.
class Detector {
 public:
  /// Wall-clock seconds spent in each server-side phase of the last Run.
  /// Pure timing — deliberately outside CommStats so the determinism
  /// contract (CommStats equality across thread counts) never touches it.
  /// Phases a method does not run stay zero (Naive only has pair_check;
  /// Stripe+KF never runs pair_check).
  struct PhaseTimes {
    double match_region = 0.0;  // Match-region containment scan + commits.
    double exit_check = 0.0;    // Safe-region exit scan + commits.
    double pair_check = 0.0;    // Per-epoch pair check (Naive: full scan).
    double rebuild = 0.0;       // Resolve/rebuild queue (probes + builds).
  };

  virtual ~Detector() = default;

  virtual std::string name() const = 0;
  virtual void Run(const World& world) = 0;

  const CommStats& stats() const { return stats_; }
  const PhaseTimes& phase_times() const { return phase_times_; }
  std::vector<AlertEvent> SortedAlerts() const {
    std::vector<AlertEvent> out = alerts_;
    SortAlerts(&out);
    return out;
  }

  /// Routes every protocol message of the next Run through `link` (the
  /// transported mode, src/net/). nullptr restores the in-process fast
  /// path. Not owned; must outlive the Run it is installed for.
  void set_link(ClientLink* link) { link_ = link; }
  ClientLink* link() const { return link_; }

 protected:
  CommStats stats_;
  PhaseTimes phase_times_;
  std::vector<AlertEvent> alerts_;
  ClientLink* link_ = nullptr;
};

/// The Naive baseline (Sec. VI-C): every user reports every epoch, the
/// server recomputes all pair distances. No probing, maximal reporting.
///
/// The per-epoch pair check has two implementations producing bit-exact
/// identical alerts and CommStats (property-tested, and enforced by
/// bench/micro_index):
///  - uniform-grid candidate enumeration (default): positions live in a
///    UniformGridIndex; each user only examines candidates from cells
///    within its largest incident alert radius, plus an exit check over
///    the currently-matched pairs. O(users x local density + matched).
///  - exhaustive O(edges) distance scan (Options::use_spatial_index =
///    false): the historical scan, kept as the correctness oracle.
class NaiveDetector : public Detector {
 public:
  struct Options {
    /// false selects the exhaustive edge scan (the oracle the grid path
    /// is verified against).
    bool use_spatial_index = true;
  };

  NaiveDetector() = default;
  explicit NaiveDetector(Options options) : options_(options) {}

  std::string name() const override { return "Naive"; }
  void Run(const World& world) override;

  /// Work counters of the last Run's grid path (all zero for the
  /// exhaustive scan); mirrors the engine.index.* obs counters to the
  /// unit (see bench_support/obs_artifacts.h).
  const SpatialIndexStats& index_stats() const { return index_stats_; }

 private:
  Options options_;
  SpatialIndexStats index_stats_;
};

}  // namespace proxdet

#endif  // PROXDET_CORE_DETECTOR_H_
