#ifndef PROXDET_CORE_COST_MODEL_H_
#define PROXDET_CORE_COST_MODEL_H_

#include <vector>

namespace proxdet {

/// The holistic cost model of Sec. V: communication is minimized by
/// maximizing the expected time until the *next* communication, which is
/// min(E_m, E_p) — the expected stripe-exit time versus the expected time
/// until a friend forces a probe. Time is measured in epochs (Delta_t = 1)
/// and lengths in meters throughout.

/// Per-step probability of staying within `radius` of the predicted
/// location when the prediction error is |N(0, sigma^2)| (Eq. 6, folded
/// form per DESIGN.md §2.2).
double StayProbability(double radius, double sigma);

/// Closed-form E_m (Sec. V-D): expected epochs before the user leaves a
/// stripe with `radius`, for per-epoch speed `speed` (m/epoch), stay
/// probability `p` and `m` predicted steps:
///   E_m = radius / speed + p (1 - p^m) / (1 - p).
double ExpectedExitTime(double radius, double speed, double p, int m);

/// One friend's contribution to E_p: the slack y0 (distance from the new
/// stripe's *path* to the friend's region, before subtracting the stripe
/// radius), the pair alert radius, and the friend's speed estimate.
struct FriendGap {
  double y0 = 0.0;            // meters
  double alert_radius = 0.0;  // meters
  double speed = 0.0;         // m/epoch, clamped to >= kMinSpeed by users
};

/// E_p = min_w (y0_w - radius - r_w) / v_w; +inf when `gaps` is empty.
double ExpectedProbeTime(const std::vector<FriendGap>& gaps, double radius);

/// Largest radius keeping E_p >= 0: min_w (y0_w - r_w); +inf when empty.
double RadiusUpperBound(const std::vector<FriendGap>& gaps);

/// The Eq. (5) initialization radius: speed-proportional split of the
/// slack between two users (Sec. V-C, Lemma 2 guarantees the pairwise
/// constraint). Exposed as a library primitive and property-tested.
double InitializationRadius(double my_speed, double friend_speed,
                            double center_distance, double alert_radius);

/// Result of solving E_m = E_p for one fixed m.
struct RadiusSolution {
  double radius = 0.0;
  double e_m = 0.0;
  double e_p = 0.0;
  /// min(e_m, e_p): the objective Algorithm 2 maximizes over m.
  double Objective() const { return e_m < e_p ? e_m : e_p; }
};

/// Solves for the radius balancing E_m and E_p at horizon `m`:
/// - with no friends, returns `radius_cap` (bigger is strictly better);
/// - when E_m <= E_p already holds at the upper-bound radius, returns the
///   upper bound (decreasing the radius only widens the gap);
/// - otherwise bisects on [0, upper] for |E_m - E_p| < epsilon.
/// `sigma` is the predictor's calibrated error scale; `speed` the user's
/// m/epoch estimate. Requires RadiusUpperBound(gaps) > 0 (probe logic
/// upstream guarantees it).
RadiusSolution SolveStripeRadius(const std::vector<FriendGap>& gaps, int m,
                                 double sigma, double speed,
                                 double radius_cap, double epsilon);

}  // namespace proxdet

#endif  // PROXDET_CORE_COST_MODEL_H_
