#ifndef PROXDET_CORE_SIMULATION_H_
#define PROXDET_CORE_SIMULATION_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/detector.h"
#include "core/policies.h"
#include "core/region_detector.h"
#include "predict/predictor.h"
#include "traj/dataset.h"
#include "traj/generator.h"
#include "traj/scenario.h"

namespace proxdet {

/// The comparison methods of Sec. VI-C.
enum class Method {
  kNaive,
  kStatic,
  kFmd,
  kCmd,
  kStripeRmf,
  kStripeHmm,
  kStripeR2d2,
  kStripeKf,
  kStripeLinear,  // Extra ablation: the stripe driven by FMD's own model.
};

std::string MethodName(Method method);

/// The eight methods evaluated in the paper's figures, in paper order.
std::vector<Method> PaperMethodSet();

/// A complete experiment configuration (Table II, laptop-scaled defaults).
struct WorkloadConfig {
  DatasetKind dataset = DatasetKind::kTruck;
  size_t num_users = 300;       // N
  int epochs = 200;             // S
  int speed_steps = 8;          // V (raw ticks per epoch)
  double avg_friends = 30.0;    // F
  double alert_radius_m = 6000.0;  // r; per-user preference drawn around it.
  uint64_t seed = 42;
  /// Offline training set for HMM/R2-D2 and sigma calibration (the paper
  /// trains on 1,600 synchronized timestamps).
  size_t training_users = 60;
  int training_epochs = 200;
};

/// A built experiment: the world plus the (epoch-spaced) training set that
/// shares the same road network, and the precomputed ground truth.
struct Workload {
  WorkloadConfig config;
  World world;
  std::vector<Trajectory> training;
  /// Oracle computed at build time (valid while no updates are scheduled
  /// after BuildWorkload). Prefer GroundTruth(), which handles both cases.
  std::vector<AlertEvent> ground_truth;

  Workload(WorkloadConfig config, World world,
           std::vector<Trajectory> training,
           std::vector<AlertEvent> ground_truth);

  /// Whether RunMethod checks alerts against GroundTruth(). Scenario
  /// workloads built with compute_ground_truth=false (the million-user
  /// streaming runs, where even the O(N) oracle sweep is unwanted) set
  /// this false and RunResult::alerts_exact becomes vacuous.
  bool oracle_enabled = true;

  /// The oracle matching the world's *current* update schedule. Returns
  /// `ground_truth` when nothing was scheduled after build; otherwise
  /// recomputes the full scan exactly once and memoizes it. The first
  /// call is `std::call_once`-guarded: SweepRunner fans method cells out
  /// across the pool and they all land here concurrently — every caller
  /// blocks until the one scan finishes, then reads lock-free.
  /// RunMethod historically re-ran the scan for every method on
  /// dynamic-graph workloads — fig13 paid the oracle 8x per sweep point.
  const std::vector<AlertEvent>& GroundTruth() const;

 private:
  // Heap-held so Workload stays movable (once_flag/mutex members are not).
  struct OracleCache {
    std::once_flag once;
    size_t update_count = 0;  // Schedule length the cache was computed at.
    std::vector<AlertEvent> alerts;
    // Rekey path for the rare schedule-mutated-again case; like
    // ScheduleUpdate itself it must not race with concurrent readers.
    std::mutex rekey_mutex;
  };
  std::unique_ptr<OracleCache> oracle_cache_;
};

/// Generates trajectories, the interest graph and the training set.
Workload BuildWorkload(const WorkloadConfig& config);

/// A city-scale scenario workload (the streaming substrate's driver).
/// `stream=true` builds a streaming World — O(active users) steady-state
/// memory, positions generated per epoch inside the detectors'
/// BeginEpoch — while `stream=false` materializes the *same* per-user
/// streams into full trajectories (the oracle twin): the two modes are
/// bit-exact in alerts, CommStats, rebuild counts and obs digests for
/// every method, thread count and shard count.
struct ScenarioWorkloadConfig {
  ScenarioSpec scenario;
  bool stream = true;
  /// False skips the ground-truth sweep entirely (million-user runs);
  /// the workload's oracle_enabled flag records it.
  bool compute_ground_truth = true;
  size_t training_users = 60;
  int training_epochs = 200;
};

Workload BuildScenarioWorkload(const ScenarioWorkloadConfig& config);

/// Constructs a ready-to-run detector for the method: stripe methods get
/// their predictor built, trained on the workload's training set, and their
/// cost-model sigma calibrated on it (Kalman noise parameters are grid
/// tuned, mirroring Sec. VI-B).
std::unique_ptr<Detector> MakeDetector(Method method, const Workload& workload,
                                       RegionDetector::Options options = {});

/// Builds and trains the prediction model a stripe method would use
/// (Kalman noise parameters grid-tuned on the training set). Exposed for
/// ablation studies and custom detector assembly.
std::unique_ptr<Predictor> MakeTrainedPredictor(PredictorKind kind,
                                                const Workload& workload);

/// Calibrates the per-step cross-track sigma of `predictor` on the workload
/// training set and returns stripe-policy options carrying it.
StripePolicy::Options CalibratedStripeOptions(Predictor* predictor,
                                              const Workload& workload);

/// Outcome of one (method, workload) simulation.
struct RunResult {
  Method method = Method::kNaive;
  CommStats stats;
  size_t alert_count = 0;
  /// Safe-region constructions performed (0 for Naive); part of the
  /// bit-exact determinism contract across thread counts.
  uint64_t rebuild_count = 0;
  /// Whether the detector's alert stream matched the ground truth exactly
  /// (the correctness contract; always checked).
  bool alerts_exact = false;
};

RunResult RunMethod(Method method, const Workload& workload,
                    RegionDetector::Options options = {});

}  // namespace proxdet

#endif  // PROXDET_CORE_SIMULATION_H_
