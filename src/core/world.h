#ifndef PROXDET_CORE_WORLD_H_
#define PROXDET_CORE_WORLD_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "core/events.h"
#include "graph/interest_graph.h"
#include "traj/streaming.h"
#include "traj/trajectory.h"

namespace proxdet {

/// A scheduled interest-graph change (Sec. VI-E's dynamic workload).
struct GraphUpdate {
  int epoch = 0;
  bool insert = true;  // false = delete
  UserId u = -1;
  UserId w = -1;
  double alert_radius = 0.0;
};

/// The immutable simulation input: user trajectories, the interest graph,
/// and the epoch clock. The paper's "moving speed V (steps per epoch)"
/// knob is `speed_steps`: each detection epoch consumes V raw trajectory
/// ticks, so higher V means users cover more ground between checks.
class World {
 public:
  World(std::vector<Trajectory> trajectories, InterestGraph graph,
        int speed_steps, int epochs);

  /// Streaming world: positions come from the generator one epoch at a
  /// time into a fixed ring of `kStreamWindow` epoch rows, so steady-state
  /// memory is O(user_count) instead of O(user_count x epochs). Drivers
  /// must call BeginEpoch(e) (serially) before reading epoch e; Position/
  /// RecentWindow then serve any epoch within the ring window. Epoch 0
  /// rewinds the stream, so repeated detector Runs over one streaming
  /// world replay bit-identical positions.
  World(std::unique_ptr<StreamingGenerator> stream, InterestGraph graph,
        int epochs);

  /// Epoch rows held by a streaming world's ring: the deepest lookback any
  /// engine needs (the region detector's 10-epoch report window, plus the
  /// current epoch) with one row of slack.
  static constexpr int kStreamWindow = 12;

  size_t user_count() const {
    return stream_ ? stream_->gen->user_count() : trajectories_.size();
  }
  int epochs() const { return epochs_; }
  int speed_steps() const { return speed_steps_; }
  bool streaming() const { return stream_ != nullptr; }

  /// Seconds covered by one epoch.
  double epoch_seconds() const;

  /// Streaming worlds: generates positions up through `epoch` (a no-op for
  /// materialized worlds and already-generated epochs; epoch 0 rewinds the
  /// stream first). Serial point — detectors call it at the top of the
  /// epoch loop, before any parallel Position/RecentWindow fan-out.
  void BeginEpoch(int epoch) const;

  /// User u's exact position at the given epoch (clamped to the trajectory
  /// end if the data runs short).
  Vec2 Position(UserId u, int epoch) const;

  /// The last `count` epoch-spaced positions of u ending at `epoch`
  /// (inclusive, oldest first) — the payload a reporting client attaches
  /// for the server-side predictor.
  std::vector<Vec2> RecentWindow(UserId u, int epoch, size_t count) const;

  /// Allocation-free overload: clears `*out` and fills it with the window.
  /// The detector hot path calls this once per report and once per rebuild;
  /// a reused buffer keeps the epoch loop free of per-user allocations.
  void RecentWindow(UserId u, int epoch, size_t count,
                    std::vector<Vec2>* out) const;

  const InterestGraph& graph() const { return graph_; }
  const std::vector<Trajectory>& trajectories() const { return trajectories_; }

  /// Schedules a graph insertion/deletion; updates apply at epoch start.
  /// Appends in O(1) and marks the schedule dirty — the epoch-ordered
  /// stable sort is deferred to the first read, so an n-update schedule
  /// costs one sort instead of n (the historical per-call re-sort was
  /// O(n^2 log n) across a fig13-style schedule). Must not race with
  /// readers, like any non-const method.
  void ScheduleUpdate(const GraphUpdate& update);

  /// Updates stable-sorted by epoch (ties keep scheduling order). Lazily
  /// sorts on first read after a burst of ScheduleUpdate calls; safe to
  /// call from concurrent readers (the one-time sort is mutex-guarded).
  const std::vector<GraphUpdate>& scheduled_updates() const;

  /// Ground-truth alert stream per Def. 1, honoring scheduled updates:
  /// an inserted edge alerts at its insertion epoch when already within
  /// radius. This is the oracle every detector must match exactly.
  std::vector<AlertEvent> GroundTruthAlerts() const;

 private:
  // Synchronization for the lazy schedule sort; heap-held so World stays
  // movable (moving a World while readers are active is already UB).
  struct ScheduleState {
    std::atomic<bool> dirty{false};
    std::mutex mutex;
  };

  // Streaming mode: the generator plus the epoch-major position ring
  // (`ring[(epoch % kStreamWindow) * N + u]`). Heap-held and mutable:
  // BeginEpoch is logically const (the stream is a pure function of the
  // seed) but advances the cursor. Only the serial BeginEpoch writes it.
  struct StreamState {
    std::unique_ptr<StreamingGenerator> gen;
    std::vector<Vec2> ring;
    int generated = 0;  // Epochs emitted since the last rewind.
  };

  std::vector<AlertEvent> StreamingGroundTruth() const;

  std::vector<Trajectory> trajectories_;
  InterestGraph graph_;
  int speed_steps_;
  int epochs_;
  mutable std::unique_ptr<StreamState> stream_;
  mutable std::vector<GraphUpdate> updates_;  // Sorted by epoch when clean.
  std::unique_ptr<ScheduleState> schedule_state_;
};

}  // namespace proxdet

#endif  // PROXDET_CORE_WORLD_H_
