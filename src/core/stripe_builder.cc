#include "core/stripe_builder.h"

#include <algorithm>
#include <cmath>

namespace proxdet {

namespace {

/// Distance from one path segment to a friend's region shape.
double SegmentToShape(const Vec2& a, const Vec2& b,
                      const SafeRegionShape& shape, int epoch) {
  const Stripe segment_as_stripe(Polyline({a, b}), 0.0);
  return ShapeMinDistance(SafeRegionShape(segment_as_stripe), shape, epoch);
}

/// Snap one coordinate onto the quantization grid. Coordinates too large
/// for an exact grid index (beyond ~2^52 grid cells) pass through unsnapped
/// — the codec's own exactness check will then ship them uncompressed.
double SnapToGrid(double v, double grid) {
  if (!std::isfinite(v) || std::abs(v) * grid > 4.5e15) return v;
  return static_cast<double>(std::llround(v * grid)) / grid;
}

Vec2 SnapToGrid(const Vec2& p, double grid) {
  return {SnapToGrid(p.x, grid), SnapToGrid(p.y, grid)};
}

}  // namespace

StripeBuildResult BuildPredictiveStripe(
    const Vec2& current, const std::vector<Vec2>& predicted_in,
    const std::vector<StripeFriendConstraint>& friends, double user_speed,
    const StripeBuildConfig& config, int epoch) {
  user_speed = std::max(user_speed, 1e-6);
  // Quantize the anchors up front: all clearance and radius math below then
  // sees the snapped coordinates, so the safety guarantee is established for
  // the stripe the client will actually receive (wire-compressible as-is).
  Vec2 current_q = current;
  std::vector<Vec2> predicted = predicted_in;
  if (config.quantize_grid > 0.0) {
    current_q = SnapToGrid(current, config.quantize_grid);
    for (Vec2& p : predicted) p = SnapToGrid(p, config.quantize_grid);
  }
  const auto radius_cap_for = [&config](int m) {
    return std::max(config.sigma_cap_mult * config.SigmaForStep(m),
                    config.min_radius);
  };

  // Upper bound on m from the predicted anchors themselves (Algorithm 2
  // lines 2-6): a predicted point already within alert radius of a friend's
  // region cannot be enclosed.
  int max_m = static_cast<int>(
      std::min<size_t>(predicted.size(), config.max_horizon));
  for (const StripeFriendConstraint& f : friends) {
    for (int i = 1; i <= max_m; ++i) {
      const double d = ShapeDistanceToPoint(f.region, predicted[i - 1], epoch);
      if (d <= f.alert_radius) {
        max_m = i - 1;
        break;
      }
    }
  }

  // Anchors: current location, then the enclosed predicted points. Gap
  // prefix minima y0_f(m) accumulate as m grows one segment at a time.
  std::vector<FriendGap> gaps(friends.size());
  for (size_t i = 0; i < friends.size(); ++i) {
    gaps[i].alert_radius = friends[i].alert_radius;
    gaps[i].speed =
        std::max(friends[i].speed * config.approach_factor, 1e-6);
    gaps[i].y0 =
        ShapeDistanceToPoint(friends[i].region, current_q, epoch);
  }

  // m = 0: the degenerate single-anchor stripe (fresh users with no
  // prediction, or users squeezed by friends on all sides).
  StripeBuildResult best;
  best.m = 0;
  best.solution = SolveStripeRadius(gaps, 0, config.SigmaForStep(1),
                                    user_speed, radius_cap_for(1),
                                    config.epsilon);
  best.stripe = Stripe(Polyline({current_q}), best.solution.radius);

  // When the Eq. (8) approximation drives the optimization, exact prefix
  // minima are still tracked so the chosen radius can be clamped to the
  // sound bound.
  std::vector<FriendGap> exact_gaps = gaps;
  Vec2 prev_anchor = current_q;
  std::vector<Vec2> anchors{current_q};
  for (int m = 1; m <= max_m; ++m) {
    const Vec2& next_anchor = predicted[m - 1];
    for (size_t i = 0; i < friends.size(); ++i) {
      const double exact_d =
          SegmentToShape(prev_anchor, next_anchor, friends[i].region, epoch);
      exact_gaps[i].y0 = std::min(exact_gaps[i].y0, exact_d);
      if (config.use_eq8_distance) {
        gaps[i].y0 = std::min(
            gaps[i].y0,
            ShapeDistanceToPoint(friends[i].region, next_anchor, epoch));
      } else {
        gaps[i].y0 = exact_gaps[i].y0;
      }
    }
    anchors.push_back(next_anchor);
    prev_anchor = next_anchor;

    if (RadiusUpperBound(exact_gaps) <= 0.0) break;  // No sound radius left.
    const double sigma_m = config.SigmaForStep(m);
    RadiusSolution sol = SolveStripeRadius(
        gaps, m, sigma_m, user_speed, radius_cap_for(m), config.epsilon);
    if (config.use_eq8_distance) {
      sol.radius = std::min(sol.radius, RadiusUpperBound(exact_gaps));
    }
    if (sol.Objective() > best.solution.Objective()) {
      best.solution = sol;
      best.m = m;
      best.stripe = Stripe(
          Polyline(std::vector<Vec2>(anchors.begin(), anchors.end())),
          sol.radius);
    }
    // Confidence floor: once reaching step m is too unlikely, longer
    // stripes only dilute the cost model (Algorithm 2's p_min cutoff).
    const double p = StayProbability(sol.radius, sigma_m);
    if (std::pow(p, m) < config.p_min) break;
  }
  return best;
}

}  // namespace proxdet
