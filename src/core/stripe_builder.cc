#include "core/stripe_builder.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <variant>

#include "geom/simd/simd.h"
#include "region/region_batch.h"

namespace proxdet {

namespace {

/// Distance from one path segment to a friend's region shape. Bit-exact
/// with (and previously implemented as) ShapeMinDistance between a
/// zero-radius temporary Stripe over {a, b} and the shape — but evaluated
/// directly through the batched kernels, with the segment's derived form
/// computed once and no heap allocation: this runs friends x m times per
/// rebuild and was the top profile entry before the rewrite. The
/// zero-radius term the temporary contributed (d - 0.0) is an exact no-op
/// on the non-negative distances and is dropped.
double SegmentToShape(const Vec2& a, const Vec2& b,
                      const SafeRegionShape& shape, int epoch) {
  const double dx = b.x - a.x;
  const double dy = b.y - a.y;
  const double len2 = dx * dx + dy * dy;
  return std::visit(
      [&](const auto& s) -> double {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, Circle> ||
                      std::is_same_v<T, MovingCircle>) {
          Circle c;
          if constexpr (std::is_same_v<T, MovingCircle>) {
            c = s.AtEpoch(epoch);
          } else {
            c = s;
          }
          double sq;
          simd::SegmentSquaredDistanceToPoints(a.x, a.y, dx, dy, len2,
                                               &c.center.x, &c.center.y, 1,
                                               &sq);
          return std::max(0.0, std::sqrt(sq) - c.radius);
        } else if constexpr (std::is_same_v<T, Stripe>) {
          // Stripe::DistanceToStripe's branch structure with the temporary
          // as the (always 2-point) left-hand path.
          double d;
          if (s.path().empty()) {
            d = std::numeric_limits<double>::infinity();
          } else if (s.path().size() == 1) {
            double sq;
            simd::SegmentSquaredDistanceToPoints(a.x, a.y, dx, dy, len2,
                                                 s.anchor_xs(), s.anchor_ys(),
                                                 1, &sq);
            d = std::sqrt(sq);
          } else {
            d = std::sqrt(simd::SegmentToPolylineSquaredDistance(
                a.x, a.y, b.x, b.y, s.segments_soa()));
          }
          return std::max(0.0, d - s.radius());
        } else {  // ConvexPolygon: cold — keep the legacy exact reduction.
          const Stripe segment_as_stripe(Polyline({a, b}), 0.0);
          return ShapeMinDistance(SafeRegionShape(segment_as_stripe), shape,
                                  epoch);
        }
      },
      shape);
}

/// Snap one coordinate onto the quantization grid. Coordinates too large
/// for an exact grid index (beyond ~2^52 grid cells) pass through unsnapped
/// — the codec's own exactness check will then ship them uncompressed.
double SnapToGrid(double v, double grid) {
  if (!std::isfinite(v) || std::abs(v) * grid > 4.5e15) return v;
  return static_cast<double>(std::llround(v * grid)) / grid;
}

Vec2 SnapToGrid(const Vec2& p, double grid) {
  return {SnapToGrid(p.x, grid), SnapToGrid(p.y, grid)};
}

/// Friend constraints staged once per build for the per-m scans: one SoA
/// batch of point-like shapes (circles, moving circles frozen at the build
/// epoch, single-anchor stripes), one concatenated segment SoA across all
/// polyline stripes, and the rare cold shapes kept on the per-friend path.
/// Each horizon step then issues ~3 kernel calls over the whole friend set
/// instead of one or two tiny calls per friend; the per-friend values are
/// recovered by ranged reductions that are bit-exact with the per-friend
/// calls (see the concatenated-SoA contract in geom/simd/simd.h).
struct StagedConstraints {
  // Point-like friends: the center whose segment distance is taken, and the
  // radius subtracted from it. pt_friend[k] is the friends[] index.
  std::vector<double> ptx, pty, ptr;
  std::vector<size_t> pt_friend;
  // Stripes with >= 2 anchors: segments concatenated in friend order. The
  // degenerate single-anchor encoding is NOT bit-safe for the seg-seg
  // kernel, so single-anchor stripes go in the point batch instead —
  // exactly the branch SegmentToShape / Stripe::DistanceToPoint take.
  std::vector<double> sax, say, sbx, sby, sdx, sdy, slen2;
  struct Range {
    size_t friend_index;
    size_t begin, end;  // lane range in the concatenated arrays
    double radius;
  };
  std::vector<Range> ranges;
  std::vector<size_t> cold;  // ConvexPolygon: legacy per-friend reduction
  // Kernel outputs, sized to the batches.
  std::vector<double> pt_sq, seg_sq, pdtp_sq;

  simd::SegmentSoA view() const {
    return simd::SegmentSoA{sax.data(), say.data(), sbx.data(),  sby.data(),
                            sdx.data(), sdy.data(), slen2.data(), sax.size()};
  }
};

void StageConstraints(const std::vector<StripeFriendConstraint>& friends,
                      int epoch, StagedConstraints& out) {
  out.ptx.clear();
  out.pty.clear();
  out.ptr.clear();
  out.pt_friend.clear();
  out.sax.clear();
  out.say.clear();
  out.sbx.clear();
  out.sby.clear();
  out.sdx.clear();
  out.sdy.clear();
  out.slen2.clear();
  out.ranges.clear();
  out.cold.clear();
  for (size_t i = 0; i < friends.size(); ++i) {
    std::visit(
        [&](const auto& s) {
          using T = std::decay_t<decltype(s)>;
          if constexpr (std::is_same_v<T, Circle> ||
                        std::is_same_v<T, MovingCircle>) {
            Circle c;
            if constexpr (std::is_same_v<T, MovingCircle>) {
              c = s.AtEpoch(epoch);
            } else {
              c = s;
            }
            out.ptx.push_back(c.center.x);
            out.pty.push_back(c.center.y);
            out.ptr.push_back(c.radius);
            out.pt_friend.push_back(i);
          } else if constexpr (std::is_same_v<T, Stripe>) {
            // Empty path: both distances are +infinity, a min no-op — drop.
            if (s.path().empty()) return;
            if (s.path().size() == 1) {
              out.ptx.push_back(s.anchor_xs()[0]);
              out.pty.push_back(s.anchor_ys()[0]);
              out.ptr.push_back(s.radius());
              out.pt_friend.push_back(i);
              return;
            }
            const simd::SegmentSoA segs = s.segments_soa();
            const size_t begin = out.sax.size();
            out.sax.insert(out.sax.end(), segs.ax, segs.ax + segs.n);
            out.say.insert(out.say.end(), segs.ay, segs.ay + segs.n);
            out.sbx.insert(out.sbx.end(), segs.bx, segs.bx + segs.n);
            out.sby.insert(out.sby.end(), segs.by, segs.by + segs.n);
            out.sdx.insert(out.sdx.end(), segs.dx, segs.dx + segs.n);
            out.sdy.insert(out.sdy.end(), segs.dy, segs.dy + segs.n);
            out.slen2.insert(out.slen2.end(), segs.len2, segs.len2 + segs.n);
            out.ranges.push_back({i, begin, begin + segs.n, s.radius()});
          } else {  // ConvexPolygon
            out.cold.push_back(i);
          }
        },
        *friends[i].region);
  }
  out.pt_sq.resize(out.ptx.size());
  out.seg_sq.resize(out.sax.size());
  out.pdtp_sq.resize(out.sax.size());
}

/// Per-build working memory, reused across the ~tens of thousands of
/// rebuilds a run performs (the builder runs on pool threads; one scratch
/// per thread).
struct BuildScratch {
  StagedConstraints staged;
  std::vector<Vec2> predicted;
  std::vector<FriendGap> gaps, exact_gaps;
  std::vector<Vec2> anchors;
  // Per staged stripe range: point distance at the current anchor, reused
  // by the Eq. (8) accumulation.
  std::vector<double> seg_ptnext;
};

BuildScratch& Scratch() {
  thread_local BuildScratch scratch;
  return scratch;
}

}  // namespace

StripeBuildResult BuildPredictiveStripe(
    const Vec2& current, const std::vector<Vec2>& predicted_in,
    const std::vector<StripeFriendConstraint>& friends, double user_speed,
    const StripeBuildConfig& config, int epoch) {
  user_speed = std::max(user_speed, 1e-6);
  BuildScratch& scratch = Scratch();
  // Quantize the anchors up front: all clearance and radius math below then
  // sees the snapped coordinates, so the safety guarantee is established for
  // the stripe the client will actually receive (wire-compressible as-is).
  Vec2 current_q = current;
  std::vector<Vec2>& predicted = scratch.predicted;
  predicted.assign(predicted_in.begin(), predicted_in.end());
  if (config.quantize_grid > 0.0) {
    current_q = SnapToGrid(current, config.quantize_grid);
    for (Vec2& p : predicted) p = SnapToGrid(p, config.quantize_grid);
  }
  const auto radius_cap_for = [&config](int m) {
    return std::max(config.sigma_cap_mult * config.SigmaForStep(m),
                    config.min_radius);
  };

  StagedConstraints& staged = scratch.staged;
  StageConstraints(friends, epoch, staged);

  // One point against every staged point-like friend: the exact lane
  // expression of CircleDistanceToPoints (== DistancePointToCircle, and ==
  // the degenerate single-anchor stripe distance, bit for bit).
  const auto point_friend_distance = [&staged](size_t k, double px,
                                               double py) {
    const double dx = px - staged.ptx[k];
    const double dy = py - staged.pty[k];
    const double v = std::sqrt(dx * dx + dy * dy) - staged.ptr[k];
    return 0.0 < v ? v : 0.0;
  };
  // Ranged min over a store-kernel output: PolylineSquaredDistanceToPoint's
  // fold, restricted to one friend's lanes.
  const auto range_min = [](const std::vector<double>& sq,
                            const StagedConstraints::Range& r) {
    double best = std::numeric_limits<double>::infinity();
    for (size_t j = r.begin; j < r.end; ++j) {
      const double d = sq[j];
      best = d < best ? d : best;  // std::min's fold, in lane order
    }
    return best;
  };

  // Anchors: current location, then the enclosed predicted points. Gap
  // prefix minima y0_f(m) accumulate as m grows one segment at a time.
  // Friends dropped from staging (empty-path stripes) keep the +infinity
  // seed — exactly their ShapeDistanceToPoint value.
  std::vector<FriendGap>& gaps = scratch.gaps;
  gaps.assign(friends.size(), FriendGap{});
  for (size_t i = 0; i < friends.size(); ++i) {
    gaps[i].alert_radius = friends[i].alert_radius;
    gaps[i].speed =
        std::max(friends[i].speed * config.approach_factor, 1e-6);
    gaps[i].y0 = std::numeric_limits<double>::infinity();
  }
  for (size_t k = 0; k < staged.pt_friend.size(); ++k) {
    gaps[staged.pt_friend[k]].y0 =
        point_friend_distance(k, current_q.x, current_q.y);
  }
  // Batched-kernel dispatches issued by this build (store kernels over the
  // staged batches; the rare cold-path n=1 calls inside SegmentToShape are
  // not counted). Surfaced by the policy layer as simd.dispatch.*.
  size_t dispatches = 0;
  if (!staged.ranges.empty()) {
    ++dispatches;
    simd::SegmentsSquaredDistanceToPoint(staged.view(), current_q.x,
                                         current_q.y, staged.pdtp_sq.data());
    for (const StagedConstraints::Range& r : staged.ranges) {
      gaps[r.friend_index].y0 =
          std::max(0.0, std::sqrt(range_min(staged.pdtp_sq, r)) - r.radius);
    }
  }
  for (size_t ci : staged.cold) {
    gaps[ci].y0 = ShapeDistanceToPoint(*friends[ci].region, current_q, epoch);
  }

  // m = 0: the degenerate single-anchor stripe (fresh users with no
  // prediction, or users squeezed by friends on all sides). The winning
  // stripe itself is constructed once after the scan — its anchors are a
  // prefix of `anchors` and rebuilding it per improved step was pure waste.
  StripeBuildResult best;
  best.m = 0;
  best.solution = SolveStripeRadius(gaps, 0, config.SigmaForStep(1),
                                    user_speed, radius_cap_for(1),
                                    config.epsilon);

  // When the Eq. (8) approximation drives the optimization, exact prefix
  // minima are still tracked so the chosen radius can be clamped to the
  // sound bound.
  std::vector<FriendGap>& exact_gaps = scratch.exact_gaps;
  exact_gaps.assign(gaps.begin(), gaps.end());
  std::vector<double>& seg_ptnext = scratch.seg_ptnext;
  seg_ptnext.assign(staged.ranges.size(), 0.0);
  Vec2 prev_anchor = current_q;
  std::vector<Vec2>& anchors = scratch.anchors;
  anchors.assign(1, current_q);
  const int horizon = static_cast<int>(
      std::min<size_t>(predicted.size(), config.max_horizon));
  for (int m = 1; m <= horizon; ++m) {
    const Vec2& next_anchor = predicted[m - 1];

    // Algorithm 2's anchor prune (lines 2-6), evaluated lazily: a predicted
    // point within alert radius of a friend's region cannot be enclosed, so
    // the first violating point ends the scan — the same bound the upfront
    // per-friend sweep produces (it is the min over friends of the first
    // violating index), but points past the loop's own stopping step are
    // never evaluated. The stripe point distances computed here double as
    // the Eq. (8) values.
    bool violated = false;
    for (size_t k = 0; k < staged.pt_friend.size() && !violated; ++k) {
      violated = point_friend_distance(k, next_anchor.x, next_anchor.y) <=
                 friends[staged.pt_friend[k]].alert_radius;
    }
    if (!violated && !staged.ranges.empty()) {
      ++dispatches;
      simd::SegmentsSquaredDistanceToPoint(staged.view(), next_anchor.x,
                                           next_anchor.y,
                                           staged.pdtp_sq.data());
      for (size_t ri = 0; ri < staged.ranges.size(); ++ri) {
        const StagedConstraints::Range& r = staged.ranges[ri];
        const double d =
            std::max(0.0, std::sqrt(range_min(staged.pdtp_sq, r)) - r.radius);
        seg_ptnext[ri] = d;
        violated = violated || d <= friends[r.friend_index].alert_radius;
      }
    }
    for (size_t ci : staged.cold) {
      if (violated) break;
      violated =
          ShapeDistanceToPoint(*friends[ci].region, next_anchor, epoch) <=
          friends[ci].alert_radius;
    }
    if (violated) break;

    // Exact segment-to-shape clearances. The query segment's derived form
    // is computed once per step exactly as SegmentToShape derives it per
    // call; point-like friends run as one batch.
    const double qdx = next_anchor.x - prev_anchor.x;
    const double qdy = next_anchor.y - prev_anchor.y;
    const double qlen2 = qdx * qdx + qdy * qdy;
    if (!staged.ptx.empty()) {
      ++dispatches;
      simd::SegmentSquaredDistanceToPoints(
          prev_anchor.x, prev_anchor.y, qdx, qdy, qlen2, staged.ptx.data(),
          staged.pty.data(), staged.ptx.size(), staged.pt_sq.data());
      for (size_t k = 0; k < staged.pt_friend.size(); ++k) {
        const double exact_d =
            std::max(0.0, std::sqrt(staged.pt_sq[k]) - staged.ptr[k]);
        FriendGap& g = exact_gaps[staged.pt_friend[k]];
        g.y0 = std::min(g.y0, exact_d);
      }
    }
    // Stripe friends: one store-kernel call over the concatenated segment
    // batch (every lane in a full-width block, unlike per-friend calls
    // whose short ranges would mostly run in the scalar tail), then one
    // ranged min per friend — bit-exact with the per-friend reduced calls.
    if (!staged.ranges.empty()) {
      ++dispatches;
      simd::SegmentToSegmentsSquaredDistances(
          prev_anchor.x, prev_anchor.y, next_anchor.x, next_anchor.y,
          staged.view(), staged.seg_sq.data());
      for (const StagedConstraints::Range& r : staged.ranges) {
        const double exact_d =
            std::max(0.0, std::sqrt(range_min(staged.seg_sq, r)) - r.radius);
        FriendGap& g = exact_gaps[r.friend_index];
        g.y0 = std::min(g.y0, exact_d);
      }
    }
    for (size_t i : staged.cold) {
      const double exact_d =
          SegmentToShape(prev_anchor, next_anchor, *friends[i].region, epoch);
      exact_gaps[i].y0 = std::min(exact_gaps[i].y0, exact_d);
    }
    if (config.use_eq8_distance) {
      // Eq. (8) anchor-point distances. Point-like friends reduce to
      // DistancePointToCircle's expression (which the degenerate
      // single-anchor stripe also computes, bit for bit); stripe friends
      // reuse the prune scan's values.
      for (size_t k = 0; k < staged.pt_friend.size(); ++k) {
        const double val =
            point_friend_distance(k, next_anchor.x, next_anchor.y);
        FriendGap& g = gaps[staged.pt_friend[k]];
        g.y0 = std::min(g.y0, val);
      }
      for (size_t ri = 0; ri < staged.ranges.size(); ++ri) {
        FriendGap& g = gaps[staged.ranges[ri].friend_index];
        g.y0 = std::min(g.y0, seg_ptnext[ri]);
      }
      for (size_t i : staged.cold) {
        gaps[i].y0 = std::min(
            gaps[i].y0,
            ShapeDistanceToPoint(*friends[i].region, next_anchor, epoch));
      }
    } else {
      for (size_t i = 0; i < friends.size(); ++i) {
        gaps[i].y0 = exact_gaps[i].y0;
      }
    }
    anchors.push_back(next_anchor);
    prev_anchor = next_anchor;

    if (RadiusUpperBound(exact_gaps) <= 0.0) break;  // No sound radius left.
    const double sigma_m = config.SigmaForStep(m);
    RadiusSolution sol = SolveStripeRadius(
        gaps, m, sigma_m, user_speed, radius_cap_for(m), config.epsilon);
    if (config.use_eq8_distance) {
      sol.radius = std::min(sol.radius, RadiusUpperBound(exact_gaps));
    }
    if (sol.Objective() > best.solution.Objective()) {
      best.solution = sol;
      best.m = m;
    }
    // Confidence floor: once reaching step m is too unlikely, longer
    // stripes only dilute the cost model (Algorithm 2's p_min cutoff).
    const double p = StayProbability(sol.radius, sigma_m);
    if (std::pow(p, m) < config.p_min) break;
  }
  best.stripe = Stripe(
      Polyline(std::vector<Vec2>(anchors.begin(),
                                 anchors.begin() + best.m + 1)),
      best.solution.radius);
  best.staged_point_lanes = staged.ptx.size();
  best.staged_segment_lanes = staged.sax.size();
  best.kernel_dispatches = dispatches;
  return best;
}

}  // namespace proxdet
