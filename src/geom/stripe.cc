#include "geom/stripe.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace proxdet {

Stripe::Stripe(Polyline path, double radius)
    : path_(std::move(path)), radius_(radius) {
  if (!path_.empty()) {
    reject_box_.lo = reject_box_.hi = path_.points().front();
    for (const Vec2& p : path_.points()) reject_box_.Extend(p);
    // Inflate by the radius plus 1e-6: three orders of magnitude above the
    // 1e-9 containment tolerance, so rounding in the inflation can never
    // turn a contained point into a reject.
    const double margin = radius_ + 1e-6;
    reject_box_.lo -= Vec2{margin, margin};
    reject_box_.hi += Vec2{margin, margin};
    has_reject_box_ = true;
  }
}

bool Stripe::Contains(const Vec2& p) const {
  // AABB early-reject: every path point is inside reject_box_ deflated by
  // radius_ + 1e-6, so any p outside the box is strictly farther than the
  // containment threshold from every segment.
  if (!has_reject_box_ || !reject_box_.Contains(p)) {
    return false;
  }
  return path_.DistanceToPoint(p) <= radius_ + 1e-9;
}

double Stripe::DistanceToPoint(const Vec2& p) const {
  return std::max(0.0, path_.DistanceToPoint(p) - radius_);
}

double Stripe::DistanceToStripe(const Stripe& other) const {
  const double d = path_.DistanceToPolyline(other.path_);
  return std::max(0.0, d - radius_ - other.radius_);
}

double Stripe::ApproxDistanceToStripeEq8(const Stripe& other) const {
  // Eq. (8): min{ min_i d(a_i, S_w) - s^u, min_j d(b_j, S_u) - s^w } where
  // a_i are this stripe's anchors and b_j the other's.
  double best = std::numeric_limits<double>::infinity();
  for (const Vec2& a : path_.points()) {
    best = std::min(best, other.DistanceToPoint(a) - radius_);
  }
  for (const Vec2& b : other.path_.points()) {
    best = std::min(best, DistanceToPoint(b) - other.radius_);
  }
  return std::max(0.0, best);
}

double Stripe::DistanceToCircle(const Circle& c) const {
  return std::max(0.0, path_.DistanceToPoint(c.center) - radius_ - c.radius);
}

double Stripe::CapsuleAreaUpperBound() const {
  const double pi = 3.14159265358979323846;
  if (path_.empty()) return 0.0;
  double area = pi * radius_ * radius_;  // End caps, counted once total.
  for (size_t i = 0; i < path_.segment_count(); ++i) {
    area += 2.0 * radius_ * path_.segment(i).Length();
  }
  return area;
}

}  // namespace proxdet
