#include "geom/stripe.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace proxdet {

Stripe::Stripe(Polyline path, double radius)
    : path_(std::move(path)), radius_(radius) {
  if (!path_.empty()) {
    reject_box_.lo = reject_box_.hi = path_.points().front();
    for (const Vec2& p : path_.points()) reject_box_.Extend(p);
    // Inflate by the radius plus 1e-6: three orders of magnitude above the
    // 1e-9 containment tolerance, so rounding in the inflation can never
    // turn a contained point into a reject.
    const double margin = radius_ + 1e-6;
    reject_box_.lo -= Vec2{margin, margin};
    reject_box_.hi += Vec2{margin, margin};
    has_reject_box_ = true;
  }

  // Build the SoA cache: per-segment a, b, d = b - a, len2 = |d|^2 (the
  // exact doubles ClosestPointOnSegment derives per call), then the anchor
  // coordinates. A single-point path becomes one degenerate segment.
  const std::vector<Vec2>& pts = path_.points();
  const size_t n = pts.size();
  soa_segs_ = n == 0 ? 0 : (n == 1 ? 1 : n - 1);
  soa_.resize(7 * soa_segs_ + 2 * n);
  double* ax = soa_.data();
  double* ay = ax + soa_segs_;
  double* bx = ay + soa_segs_;
  double* by = bx + soa_segs_;
  double* dx = by + soa_segs_;
  double* dy = dx + soa_segs_;
  double* len2 = dy + soa_segs_;
  for (size_t i = 0; i < soa_segs_; ++i) {
    const Vec2& a = pts[i];
    const Vec2& b = pts[n == 1 ? 0 : i + 1];
    ax[i] = a.x;
    ay[i] = a.y;
    bx[i] = b.x;
    by[i] = b.y;
    dx[i] = b.x - a.x;
    dy[i] = b.y - a.y;
    len2[i] = dx[i] * dx[i] + dy[i] * dy[i];
  }
  double* px = len2 + soa_segs_;
  double* py = px + n;
  for (size_t i = 0; i < n; ++i) {
    px[i] = pts[i].x;
    py[i] = pts[i].y;
  }
}

bool Stripe::Contains(const Vec2& p) const {
  // AABB early-reject: every path point is inside reject_box_ deflated by
  // radius_ + 1e-6, so any p outside the box is strictly farther than the
  // containment threshold from every segment.
  if (!has_reject_box_ || !reject_box_.Contains(p)) {
    return false;
  }
  return std::sqrt(simd::PolylineSquaredDistanceToPoint(segments_soa(), p.x,
                                                        p.y)) <=
         radius_ + 1e-9;
}

double Stripe::DistanceToPoint(const Vec2& p) const {
  return std::max(
      0.0, std::sqrt(simd::PolylineSquaredDistanceToPoint(segments_soa(), p.x,
                                                          p.y)) -
               radius_);
}

double Stripe::DistanceToStripe(const Stripe& other) const {
  // Polyline::DistanceToPolyline's branch structure, with the scans routed
  // through the batched kernels (single-point paths take the point-distance
  // branches exactly as the scalar code does — the degenerate-segment SoA
  // encoding is only bit-safe for point kernels).
  double d;
  if (path_.empty() || other.path_.empty()) {
    d = std::numeric_limits<double>::infinity();
  } else if (path_.size() == 1) {
    d = std::sqrt(simd::PolylineSquaredDistanceToPoint(
        other.segments_soa(), path_.points()[0].x, path_.points()[0].y));
  } else if (other.path_.size() == 1) {
    d = std::sqrt(simd::PolylineSquaredDistanceToPoint(
        segments_soa(), other.path_.points()[0].x, other.path_.points()[0].y));
  } else {
    const simd::SegmentSoA mine = segments_soa();
    const simd::SegmentSoA theirs = other.segments_soa();
    double best = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < mine.n; ++i) {
      const double row = simd::SegmentToPolylineSquaredDistance(
          mine.ax[i], mine.ay[i], mine.bx[i], mine.by[i], theirs);
      best = std::min(best, row);
      if (best == 0.0) break;  // Crossing found: the scalar early exit.
    }
    d = std::sqrt(best);
  }
  return std::max(0.0, d - radius_ - other.radius_);
}

double Stripe::ApproxDistanceToStripeEq8(const Stripe& other) const {
  // Eq. (8): min{ min_i d(a_i, S_w) - s^u, min_j d(b_j, S_u) - s^w } where
  // a_i are this stripe's anchors and b_j the other's. Each anchor set is
  // scanned as one batched polyline-distance call (chunked through a stack
  // buffer); the min fold keeps the scalar's sequential order.
  constexpr size_t kChunk = 64;
  double sq[kChunk];
  double best = std::numeric_limits<double>::infinity();
  const simd::SegmentSoA mine = segments_soa();
  const simd::SegmentSoA theirs = other.segments_soa();
  for (size_t i0 = 0; i0 < anchor_count(); i0 += kChunk) {
    const size_t c = std::min(kChunk, anchor_count() - i0);
    simd::PolylineSquaredDistanceToPoints(theirs, anchor_xs() + i0,
                                          anchor_ys() + i0, c, sq);
    for (size_t k = 0; k < c; ++k) {
      const double dp = std::max(0.0, std::sqrt(sq[k]) - other.radius_);
      best = std::min(best, dp - radius_);
    }
  }
  for (size_t i0 = 0; i0 < other.anchor_count(); i0 += kChunk) {
    const size_t c = std::min(kChunk, other.anchor_count() - i0);
    simd::PolylineSquaredDistanceToPoints(mine, other.anchor_xs() + i0,
                                          other.anchor_ys() + i0, c, sq);
    for (size_t k = 0; k < c; ++k) {
      const double dp = std::max(0.0, std::sqrt(sq[k]) - radius_);
      best = std::min(best, dp - other.radius_);
    }
  }
  return std::max(0.0, best);
}

double Stripe::DistanceToCircle(const Circle& c) const {
  return std::max(
      0.0, std::sqrt(simd::PolylineSquaredDistanceToPoint(
               segments_soa(), c.center.x, c.center.y)) -
               radius_ - c.radius);
}

double Stripe::CapsuleAreaUpperBound() const {
  const double pi = 3.14159265358979323846;
  if (path_.empty()) return 0.0;
  double area = pi * radius_ * radius_;  // End caps, counted once total.
  for (size_t i = 0; i < path_.segment_count(); ++i) {
    area += 2.0 * radius_ * path_.segment(i).Length();
  }
  return area;
}

}  // namespace proxdet
