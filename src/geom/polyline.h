#ifndef PROXDET_GEOM_POLYLINE_H_
#define PROXDET_GEOM_POLYLINE_H_

#include <vector>

#include "geom/segment.h"
#include "geom/vec2.h"

namespace proxdet {

/// Open polygonal chain through an ordered list of points. The predictive
/// safe region is a fixed-radius buffer around a polyline of predicted
/// locations p_1..p_m (Def. 4).
class Polyline {
 public:
  Polyline() = default;
  explicit Polyline(std::vector<Vec2> points);

  const std::vector<Vec2>& points() const { return points_; }
  bool empty() const { return points_.empty(); }
  size_t size() const { return points_.size(); }

  /// Number of segments: max(0, size() - 1).
  size_t segment_count() const {
    return points_.size() < 2 ? 0 : points_.size() - 1;
  }
  Segment segment(size_t i) const { return {points_[i], points_[i + 1]}; }

  double Length() const;

  /// min_i d(p, segment_i); for a single-point polyline, the distance to
  /// that point. Returns +inf for an empty polyline.
  double DistanceToPoint(const Vec2& p) const;

  /// Squared form of DistanceToPoint: the per-segment scan compares squared
  /// distances and defers the single sqrt to the caller, which is bit-exact
  /// because correctly-rounded sqrt is monotone.
  double SquaredDistanceToPoint(const Vec2& p) const;

  /// Exact minimum distance between two polylines (0 if they cross).
  double DistanceToPolyline(const Polyline& other) const;

  /// Point at arc-length s from the start (clamped to the ends).
  Vec2 PointAtArcLength(double s) const;

  /// Exact (bitwise) structural equality; the wire codec's round-trip
  /// guarantee is stated in terms of it.
  friend bool operator==(const Polyline& a, const Polyline& b) {
    return a.points_ == b.points_;
  }

 private:
  std::vector<Vec2> points_;
};

}  // namespace proxdet

#endif  // PROXDET_GEOM_POLYLINE_H_
