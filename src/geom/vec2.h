#ifndef PROXDET_GEOM_VEC2_H_
#define PROXDET_GEOM_VEC2_H_

#include <cmath>

namespace proxdet {

/// 2-D point / vector in meters. All spatial reasoning in the library runs
/// in a local planar frame (the paper uses Euclidean distance throughout,
/// Sec. II), so a flat Vec2 is the whole coordinate story.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double px, double py) : x(px), y(py) {}

  constexpr Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double k) const { return {x * k, y * k}; }
  constexpr Vec2 operator/(double k) const { return {x / k, y / k}; }
  Vec2& operator+=(const Vec2& o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  Vec2& operator-=(const Vec2& o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  constexpr bool operator==(const Vec2& o) const { return x == o.x && y == o.y; }

  constexpr double Dot(const Vec2& o) const { return x * o.x + y * o.y; }
  /// Z component of the 3-D cross product; > 0 when `o` is counterclockwise
  /// from this vector.
  constexpr double Cross(const Vec2& o) const { return x * o.y - y * o.x; }
  double Norm() const { return std::sqrt(x * x + y * y); }
  constexpr double SquaredNorm() const { return x * x + y * y; }

  /// Unit vector in this direction; returns (0, 0) for the zero vector.
  Vec2 Normalized() const {
    const double n = Norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{0.0, 0.0};
  }

  /// Counterclockwise perpendicular.
  constexpr Vec2 Perp() const { return {-y, x}; }
};

inline constexpr Vec2 operator*(double k, const Vec2& v) { return v * k; }

inline double Distance(const Vec2& a, const Vec2& b) { return (a - b).Norm(); }

inline constexpr double SquaredDistance(const Vec2& a, const Vec2& b) {
  return (a - b).SquaredNorm();
}

}  // namespace proxdet

#endif  // PROXDET_GEOM_VEC2_H_
