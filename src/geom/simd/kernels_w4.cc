// 4-wide (256-bit, AVX2) backend. This TU is compiled with
// -mavx2 -ffp-contract=off -fno-math-errno; see kernels_impl.h for the
// bit-exactness rules the instantiation relies on.

#include "geom/simd/kernel_table.h"
#include "geom/simd/kernels_impl.h"

namespace proxdet {
namespace simd {
namespace internal {

namespace {
typedef double v4d __attribute__((vector_size(32)));
typedef long long v4l __attribute__((vector_size(32)));
using K = Kernels<v4d, v4l, 4>;
}  // namespace

const KernelTable& W4Table() {
  static const KernelTable table{
      &K::PointsInBoxes,
      &K::SegmentSquaredDistanceToPoints,
      &K::PolylineSquaredDistanceToPoints,
      &K::PolylineSquaredDistanceToPoint,
      &K::SegmentsSquaredDistanceToPoint,
      &K::SegmentToPolylineSquaredDistance,
      &K::SegmentToSegmentsSquaredDistances,
      &K::PairsWithinRadii,
      &K::PointWithinRadiusOfPoints,
      &K::CirclesContainPoints,
      &K::CircleDistanceToPoints,
      &K::CirclePairsGapBelow,
      &K::KalmanPredict4,
  };
  return table;
}

}  // namespace internal
}  // namespace simd
}  // namespace proxdet
