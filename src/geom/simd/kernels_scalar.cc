// Scalar reference kernels. Every function here replicates the scalar
// geometry in src/geom operation for operation (see the per-function notes
// naming the replicated source); the vector backends treat these as ground
// truth — their tails call straight into this file and the startup
// self-check compares against it bitwise. This TU is compiled with
// -ffp-contract=off like the vector units, so no backend ever sees a fused
// multiply-add the scalar library would not perform.

#include <cmath>
#include <limits>

#include "geom/simd/kernel_table.h"
#include "geom/simd/simd.h"

namespace proxdet {
namespace simd {
namespace scalar {

namespace {

/// SquaredDistancePointToSegment(p, s) given the precomputed segment form
/// (a, d = b - a, len2 = |d|^2). Mirrors geom/segment.cc:
/// ClosestPointOnSegment (degenerate guard, clamp(dot/len2)) followed by
/// SquaredDistance(p, closest).
inline double SqDistPointSeg(double px, double py, double ax, double ay,
                             double dx, double dy, double len2) {
  double cx, cy;
  if (len2 <= 0.0) {  // Degenerate segment: closest point is a.
    cx = ax;
    cy = ay;
  } else {
    const double rx = px - ax;
    const double ry = py - ay;
    const double dot = rx * dx + ry * dy;  // (p - a).Dot(d)
    double t = dot / len2;
    t = t < 0.0 ? 0.0 : (1.0 < t ? 1.0 : t);  // std::clamp(t, 0, 1)
    cx = ax + dx * t;  // a + d * t
    cy = ay + dy * t;
  }
  const double ex = px - cx;  // SquaredDistance(p, closest)
  const double ey = py - cy;
  return ex * ex + ey * ey;
}

/// Orientation(a, b, c) with b - a passed precomputed: the sign of
/// (b - a).Cross(c - a) under the library's 1e-12 tolerance.
inline int OrientSign(double abx, double aby, double acx, double acy) {
  const double cross = abx * acy - aby * acx;
  const double eps = 1e-12;
  if (cross > eps) return 1;
  if (cross < -eps) return -1;
  return 0;
}

/// OnSegment(p, s) — the 1e-12-padded bounding-box test of segment.cc.
inline bool OnSeg(double px, double py, double sax, double say, double sbx,
                  double sby) {
  const double minx = sax < sbx ? sax : sbx;  // std::min(a.x, b.x)
  const double maxx = sbx < sax ? sax : sbx;  // std::max(a.x, b.x)
  const double miny = say < sby ? say : sby;
  const double maxy = sby < say ? say : sby;
  return minx - 1e-12 <= px && px <= maxx + 1e-12 && miny - 1e-12 <= py &&
         py <= maxy + 1e-12;
}

/// SquaredDistanceSegmentToSegment(q, s) with both segments in precomputed
/// form; replicates SegmentsIntersect + the four endpoint distances.
inline double SqDistSegSeg(double qax, double qay, double qbx, double qby,
                           double qdx, double qdy, double qlen2, double sax,
                           double say, double sbx, double sby, double sdx,
                           double sdy, double slen2) {
  const int o1 = OrientSign(qdx, qdy, sax - qax, say - qay);
  const int o2 = OrientSign(qdx, qdy, sbx - qax, sby - qay);
  const int o3 = OrientSign(sdx, sdy, qax - sax, qay - say);
  const int o4 = OrientSign(sdx, sdy, qbx - sax, qby - say);
  bool intersect = (o1 != o2 && o3 != o4);
  if (!intersect && o1 == 0 && OnSeg(sax, say, qax, qay, qbx, qby)) {
    intersect = true;
  }
  if (!intersect && o2 == 0 && OnSeg(sbx, sby, qax, qay, qbx, qby)) {
    intersect = true;
  }
  if (!intersect && o3 == 0 && OnSeg(qax, qay, sax, say, sbx, sby)) {
    intersect = true;
  }
  if (!intersect && o4 == 0 && OnSeg(qbx, qby, sax, say, sbx, sby)) {
    intersect = true;
  }
  if (intersect) return 0.0;
  const double d1 = SqDistPointSeg(qax, qay, sax, say, sdx, sdy, slen2);
  const double d2 = SqDistPointSeg(qbx, qby, sax, say, sdx, sdy, slen2);
  const double d3 = SqDistPointSeg(sax, say, qax, qay, qdx, qdy, qlen2);
  const double d4 = SqDistPointSeg(sbx, sby, qax, qay, qdx, qdy, qlen2);
  const double m12 = d2 < d1 ? d2 : d1;  // std::min(d1, d2)
  const double m34 = d4 < d3 ? d4 : d3;
  return m34 < m12 ? m34 : m12;
}

/// Matrix::operator* on fixed 4x4 row-major arrays, including the
/// v == 0.0 accumulation skip (observable in signed zeros).
inline void Mul4(const double* a, const double* b, double* out) {
  for (int i = 0; i < 16; ++i) out[i] = 0.0;
  for (int r = 0; r < 4; ++r) {
    for (int k = 0; k < 4; ++k) {
      const double v = a[r * 4 + k];
      if (v == 0.0) continue;
      for (int c = 0; c < 4; ++c) {
        out[r * 4 + c] += v * b[k * 4 + c];
      }
    }
  }
}

}  // namespace

void PointsInBoxes(const double* px, const double* py, const double* lox,
                   const double* loy, const double* hix, const double* hiy,
                   size_t n, uint8_t* inside) {
  for (size_t i = 0; i < n; ++i) {
    // BBox::Contains' comparison order: x bounds, then y bounds.
    inside[i] = px[i] >= lox[i] && px[i] <= hix[i] && py[i] >= loy[i] &&
                py[i] <= hiy[i];
  }
}

void SegmentSquaredDistanceToPoints(double ax, double ay, double dx,
                                    double dy, double len2, const double* px,
                                    const double* py, size_t n, double* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = SqDistPointSeg(px[i], py[i], ax, ay, dx, dy, len2);
  }
}

void PolylineSquaredDistanceToPoints(const SegmentSoA& segs, const double* px,
                                     const double* py, size_t n, double* out) {
  // Lane = point; per point the segment loop runs in index order exactly
  // like Polyline::SquaredDistanceToPoint.
  for (size_t i = 0; i < n; ++i) {
    double best = std::numeric_limits<double>::infinity();
    for (size_t j = 0; j < segs.n; ++j) {
      const double d = SqDistPointSeg(px[i], py[i], segs.ax[j], segs.ay[j],
                                      segs.dx[j], segs.dy[j], segs.len2[j]);
      best = d < best ? d : best;  // std::min(best, d)
    }
    out[i] = best;
  }
}

double PolylineSquaredDistanceToPoint(const SegmentSoA& segs, double px,
                                      double py) {
  double best = std::numeric_limits<double>::infinity();
  for (size_t j = 0; j < segs.n; ++j) {
    const double d = SqDistPointSeg(px, py, segs.ax[j], segs.ay[j],
                                    segs.dx[j], segs.dy[j], segs.len2[j]);
    best = d < best ? d : best;
  }
  return best;
}

void SegmentsSquaredDistanceToPoint(const SegmentSoA& segs, double px,
                                    double py, double* out) {
  // Lane = segment: the loop body of PolylineSquaredDistanceToPoint with a
  // store in place of the min fold.
  for (size_t j = 0; j < segs.n; ++j) {
    out[j] = SqDistPointSeg(px, py, segs.ax[j], segs.ay[j], segs.dx[j],
                            segs.dy[j], segs.len2[j]);
  }
}

double SegmentToPolylineSquaredDistance(double qax, double qay, double qbx,
                                        double qby, const SegmentSoA& segs) {
  // The query segment's derived form, computed once exactly as Segment
  // construction + ClosestPointOnSegment would per call.
  const double qdx = qbx - qax;
  const double qdy = qby - qay;
  const double qlen2 = qdx * qdx + qdy * qdy;
  double best = std::numeric_limits<double>::infinity();
  for (size_t j = 0; j < segs.n; ++j) {
    const double d =
        SqDistSegSeg(qax, qay, qbx, qby, qdx, qdy, qlen2, segs.ax[j],
                     segs.ay[j], segs.bx[j], segs.by[j], segs.dx[j],
                     segs.dy[j], segs.len2[j]);
    best = d < best ? d : best;
  }
  return best;
}

void SegmentToSegmentsSquaredDistances(double qax, double qay, double qbx,
                                       double qby, const SegmentSoA& segs,
                                       double* out) {
  // Lane = target segment: SegmentToPolylineSquaredDistance's loop body
  // with a store in place of the min fold (same once-per-call query form).
  const double qdx = qbx - qax;
  const double qdy = qby - qay;
  const double qlen2 = qdx * qdx + qdy * qdy;
  for (size_t j = 0; j < segs.n; ++j) {
    out[j] = SqDistSegSeg(qax, qay, qbx, qby, qdx, qdy, qlen2, segs.ax[j],
                          segs.ay[j], segs.bx[j], segs.by[j], segs.dx[j],
                          segs.dy[j], segs.len2[j]);
  }
}

void PairsWithinRadii(const double* ax, const double* ay, const double* bx,
                      const double* by, const double* r, size_t n,
                      uint8_t* within) {
  for (size_t i = 0; i < n; ++i) {
    const double dx = ax[i] - bx[i];  // Distance(a, b): (a - b).Norm()
    const double dy = ay[i] - by[i];
    within[i] = std::sqrt(dx * dx + dy * dy) < r[i];
  }
}

void PointWithinRadiusOfPoints(double ux, double uy, const double* wx,
                               const double* wy, const double* r, size_t n,
                               uint8_t* within) {
  for (size_t i = 0; i < n; ++i) {
    const double dx = ux - wx[i];
    const double dy = uy - wy[i];
    within[i] = std::sqrt(dx * dx + dy * dy) < r[i];
  }
}

void CirclesContainPoints(const double* cx, const double* cy,
                          const double* cr, const double* px,
                          const double* py, size_t n, bool strict,
                          uint8_t* inside) {
  for (size_t i = 0; i < n; ++i) {
    const double dx = cx[i] - px[i];  // SquaredDistance(center, p)
    const double dy = cy[i] - py[i];
    const double d2 = dx * dx + dy * dy;
    const double r2 = cr[i] * cr[i];
    inside[i] = strict ? d2 < r2 : d2 <= r2;
  }
}

void CircleDistanceToPoints(double cx, double cy, double cr, const double* px,
                            const double* py, size_t n, double* out) {
  for (size_t i = 0; i < n; ++i) {
    const double dx = px[i] - cx;  // Distance(p, c.center): (p - center)
    const double dy = py[i] - cy;
    const double v = std::sqrt(dx * dx + dy * dy) - cr;
    out[i] = 0.0 < v ? v : 0.0;  // std::max(0.0, v)
  }
}

void CirclePairsGapBelow(const double* ax, const double* ay, const double* ar,
                         const double* bx, const double* by, const double* br,
                         const double* thr, size_t n, uint8_t* below) {
  for (size_t i = 0; i < n; ++i) {
    const double dx = ax[i] - bx[i];
    const double dy = ay[i] - by[i];
    const double v = std::sqrt(dx * dx + dy * dy) - ar[i] - br[i];
    const double gap = 0.0 < v ? v : 0.0;  // DistanceCircleToCircle
    below[i] = gap < thr[i];
  }
}

void KalmanPredict4(const double f[16], const double q[16], double state[4],
                    double cov[16]) {
  // state <- F state: Matrix::Apply (plain accumulation, no zero skip).
  double s[4];
  for (int r = 0; r < 4; ++r) {
    double acc = 0.0;
    for (int c = 0; c < 4; ++c) acc += f[r * 4 + c] * state[c];
    s[r] = acc;
  }
  for (int r = 0; r < 4; ++r) state[r] = s[r];
  // cov <- (F cov) F^T + Q, each product with operator*'s zero skip.
  double ft[16];
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) ft[c * 4 + r] = f[r * 4 + c];
  }
  double t1[16], t2[16];
  Mul4(f, cov, t1);
  Mul4(t1, ft, t2);
  for (int i = 0; i < 16; ++i) cov[i] = t2[i] + q[i];  // operator+
}

}  // namespace scalar

namespace internal {

const KernelTable& ScalarTable() {
  static const KernelTable table{
      &scalar::PointsInBoxes,
      &scalar::SegmentSquaredDistanceToPoints,
      &scalar::PolylineSquaredDistanceToPoints,
      &scalar::PolylineSquaredDistanceToPoint,
      &scalar::SegmentsSquaredDistanceToPoint,
      &scalar::SegmentToPolylineSquaredDistance,
      &scalar::SegmentToSegmentsSquaredDistances,
      &scalar::PairsWithinRadii,
      &scalar::PointWithinRadiusOfPoints,
      &scalar::CirclesContainPoints,
      &scalar::CircleDistanceToPoints,
      &scalar::CirclePairsGapBelow,
      &scalar::KalmanPredict4,
  };
  return table;
}

}  // namespace internal
}  // namespace simd
}  // namespace proxdet
