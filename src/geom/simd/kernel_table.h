#ifndef PROXDET_GEOM_SIMD_KERNEL_TABLE_H_
#define PROXDET_GEOM_SIMD_KERNEL_TABLE_H_

#include "geom/simd/simd.h"

namespace proxdet {
namespace simd {
namespace internal {

/// Function-pointer table one backend exports; dispatch.cc selects one at
/// startup and the public entry points forward through it. Keeping the
/// indirection in one pointer (instead of per-kernel ifunc tricks) makes
/// the runtime-verified fallback trivial: verification failure just leaves
/// the scalar table installed.
struct KernelTable {
  void (*points_in_boxes)(const double*, const double*, const double*,
                          const double*, const double*, const double*, size_t,
                          uint8_t*);
  void (*segment_sqdist_to_points)(double, double, double, double, double,
                                   const double*, const double*, size_t,
                                   double*);
  void (*polyline_sqdist_to_points)(const SegmentSoA&, const double*,
                                    const double*, size_t, double*);
  double (*polyline_sqdist_to_point)(const SegmentSoA&, double, double);
  void (*segments_sqdist_to_point)(const SegmentSoA&, double, double,
                                   double*);
  double (*segment_to_polyline_sqdist)(double, double, double, double,
                                       const SegmentSoA&);
  void (*segment_to_segments_sqdists)(double, double, double, double,
                                      const SegmentSoA&, double*);
  void (*pairs_within_radii)(const double*, const double*, const double*,
                             const double*, const double*, size_t, uint8_t*);
  void (*point_within_radius_of_points)(double, double, const double*,
                                        const double*, const double*, size_t,
                                        uint8_t*);
  void (*circles_contain_points)(const double*, const double*, const double*,
                                 const double*, const double*, size_t, bool,
                                 uint8_t*);
  void (*circle_dist_to_points)(double, double, double, const double*,
                                const double*, size_t, double*);
  void (*circle_pairs_gap_below)(const double*, const double*, const double*,
                                 const double*, const double*, const double*,
                                 const double*, size_t, uint8_t*);
  void (*kalman_predict4)(const double*, const double*, double*, double*);
};

const KernelTable& ScalarTable();
#if defined(PROXDET_SIMD_HAS_W4)
const KernelTable& W4Table();
#endif
#if defined(PROXDET_SIMD_HAS_W8)
const KernelTable& W8Table();
#endif

}  // namespace internal
}  // namespace simd
}  // namespace proxdet

#endif  // PROXDET_GEOM_SIMD_KERNEL_TABLE_H_
