#ifndef PROXDET_GEOM_SIMD_KERNELS_IMPL_H_
#define PROXDET_GEOM_SIMD_KERNELS_IMPL_H_

// Width-generic vector kernels over GCC vector extensions. Included ONLY by
// the per-arch translation units (kernels_w4.cc, kernels_w8.cc), which are
// compiled with their arch flag plus -ffp-contract=off -fno-math-errno; the
// template must never be instantiated in a TU without those options.
//
// Bit-exactness discipline, applied uniformly below:
//  * a lane is one independent batch item, and the per-lane expression is
//    the scalar library's expression with identical operation order;
//  * branches in the scalar code become Select() on comparison masks —
//    Select picks one of two fully-computed values, so the chosen lane
//    value equals the scalar branch result bit-for-bit;
//  * per-lane divisions that the scalar code guards behind `len2 <= 0`
//    divide by a Select()-ed safe divisor instead, and the quotient is
//    Select()-ed away for degenerate lanes (no float division by zero, so
//    the UBSan leg stays clean even with -fsanitize=float-divide-by-zero);
//  * cross-lane min reductions only ever fold squared distances —
//    non-negative finite doubles, for which min is order-independent in
//    value and in bits — so reduce order vs the scalar loop is immaterial;
//  * every kernel finishes with a scalar-reference tail loop for n % W.

#include <limits>

#include "geom/simd/kernel_table.h"
#include "geom/simd/simd.h"

namespace proxdet {
namespace simd {
namespace internal {

template <typename VD, typename VL, int W>
struct Kernels {
  // ---- lane plumbing -------------------------------------------------------

  static VD Load(const double* p) {
    VD v;
    __builtin_memcpy(&v, p, sizeof(v));
    return v;
  }
  static void Store(double* p, VD v) { __builtin_memcpy(p, &v, sizeof(v)); }
  static VD Splat(double x) {
    VD v;
    for (int l = 0; l < W; ++l) v[l] = x;
    return v;
  }
  // Comparison results are same-size integer vectors; the element type GCC
  // picks need not be long long exactly, so go through a value cast.
  static VL Lt(VD a, VD b) { return (VL)(a < b); }
  static VL Le(VD a, VD b) { return (VL)(a <= b); }
  static VL Gt(VD a, VD b) { return (VL)(a > b); }
  static VL Ge(VD a, VD b) { return (VL)(a >= b); }
  /// Per-lane `m ? a : b` on fully-computed values (bitwise blend).
  static VD Select(VL m, VD a, VD b) {
    return (VD)((m & (VL)a) | (~m & (VL)b));
  }
  static VD Sqrt(VD v) {
    // IEEE-754 sqrt is correctly rounded, so per-lane __builtin_sqrt equals
    // std::sqrt bitwise; with -fno-math-errno this loop vectorizes.
    VD r;
    for (int l = 0; l < W; ++l) r[l] = __builtin_sqrt(v[l]);
    return r;
  }
  static void StoreMask(uint8_t* out, VL m) {
    for (int l = 0; l < W; ++l) out[l] = m[l] ? 1 : 0;
  }
  /// Order-independent min fold (callers only pass non-negative finite
  /// values); seeded like the scalar scans with +infinity.
  static double ReduceMin(VD v, double seed) {
    double best = seed;
    for (int l = 0; l < W; ++l) best = v[l] < best ? v[l] : best;
    return best;
  }

  // ---- shared geometric pieces --------------------------------------------

  /// SqDistPointSeg with per-lane segments (the degenerate guard becomes a
  /// mask; division uses the safe-divisor trick described at the top).
  static VD SqDistPointSegLaneSeg(VD px, VD py, VD ax, VD ay, VD dx, VD dy,
                                  VD len2) {
    const VD zero = Splat(0.0);
    const VD one = Splat(1.0);
    const VL degen = Le(len2, zero);
    const VD safe = Select(degen, one, len2);
    const VD rx = px - ax;
    const VD ry = py - ay;
    const VD dot = rx * dx + ry * dy;
    VD t = dot / safe;
    t = Select(Lt(t, zero), zero, Select(Lt(one, t), one, t));
    VD cx = ax + dx * t;
    VD cy = ay + dy * t;
    cx = Select(degen, ax, cx);
    cy = Select(degen, ay, cy);
    const VD ex = px - cx;
    const VD ey = py - cy;
    return ex * ex + ey * ey;
  }

  /// SqDistPointSeg with per-lane points against ONE segment (uniform
  /// operands, so the degenerate guard stays a plain branch).
  static VD SqDistPointSegUniformSeg(VD px, VD py, double ax, double ay,
                                     double dx, double dy, double len2) {
    const VD vax = Splat(ax);
    const VD vay = Splat(ay);
    if (len2 <= 0.0) {
      const VD ex = px - vax;
      const VD ey = py - vay;
      return ex * ex + ey * ey;
    }
    const VD zero = Splat(0.0);
    const VD one = Splat(1.0);
    const VD vdx = Splat(dx);
    const VD vdy = Splat(dy);
    const VD rx = px - vax;
    const VD ry = py - vay;
    const VD dot = rx * vdx + ry * vdy;
    VD t = dot / Splat(len2);
    t = Select(Lt(t, zero), zero, Select(Lt(one, t), one, t));
    const VD cx = vax + vdx * t;
    const VD cy = vay + vdy * t;
    const VD ex = px - cx;
    const VD ey = py - cy;
    return ex * ex + ey * ey;
  }

  /// OnSegment's 1e-12-padded box test, per-lane points vs per-lane
  /// segments given by raw endpoints.
  static VL OnSegV(VD px, VD py, VD sax, VD say, VD sbx, VD sby) {
    const VD eps = Splat(1e-12);
    const VD minx = Select(Lt(sax, sbx), sax, sbx);
    const VD maxx = Select(Lt(sbx, sax), sax, sbx);
    const VD miny = Select(Lt(say, sby), say, sby);
    const VD maxy = Select(Lt(sby, say), say, sby);
    return Le(minx - eps, px) & Le(px, maxx + eps) & Le(miny - eps, py) &
           Le(py, maxy + eps);
  }

  // ---- kernels -------------------------------------------------------------

  static void PointsInBoxes(const double* px, const double* py,
                            const double* lox, const double* loy,
                            const double* hix, const double* hiy, size_t n,
                            uint8_t* inside) {
    size_t i = 0;
    for (; i + W <= n; i += W) {
      const VD x = Load(px + i);
      const VD y = Load(py + i);
      const VL m = Ge(x, Load(lox + i)) & Le(x, Load(hix + i)) &
                   Ge(y, Load(loy + i)) & Le(y, Load(hiy + i));
      StoreMask(inside + i, m);
    }
    if (i < n) {
      scalar::PointsInBoxes(px + i, py + i, lox + i, loy + i, hix + i,
                            hiy + i, n - i, inside + i);
    }
  }

  static void SegmentSquaredDistanceToPoints(double ax, double ay, double dx,
                                             double dy, double len2,
                                             const double* px,
                                             const double* py, size_t n,
                                             double* out) {
    size_t i = 0;
    for (; i + W <= n; i += W) {
      Store(out + i, SqDistPointSegUniformSeg(Load(px + i), Load(py + i), ax,
                                              ay, dx, dy, len2));
    }
    if (i < n) {
      scalar::SegmentSquaredDistanceToPoints(ax, ay, dx, dy, len2, px + i,
                                             py + i, n - i, out + i);
    }
  }

  static void PolylineSquaredDistanceToPoints(const SegmentSoA& segs,
                                              const double* px,
                                              const double* py, size_t n,
                                              double* out) {
    size_t i = 0;
    for (; i + W <= n; i += W) {
      const VD x = Load(px + i);
      const VD y = Load(py + i);
      VD best = Splat(std::numeric_limits<double>::infinity());
      for (size_t j = 0; j < segs.n; ++j) {
        const VD d = SqDistPointSegUniformSeg(x, y, segs.ax[j], segs.ay[j],
                                              segs.dx[j], segs.dy[j],
                                              segs.len2[j]);
        best = Select(Lt(d, best), d, best);
      }
      Store(out + i, best);
    }
    if (i < n) {
      scalar::PolylineSquaredDistanceToPoints(segs, px + i, py + i, n - i,
                                              out + i);
    }
  }

  static double PolylineSquaredDistanceToPoint(const SegmentSoA& segs,
                                               double px, double py) {
    const VD vpx = Splat(px);
    const VD vpy = Splat(py);
    VD best = Splat(std::numeric_limits<double>::infinity());
    size_t j = 0;
    for (; j + W <= segs.n; j += W) {
      const VD d = SqDistPointSegLaneSeg(vpx, vpy, Load(segs.ax + j),
                                         Load(segs.ay + j), Load(segs.dx + j),
                                         Load(segs.dy + j),
                                         Load(segs.len2 + j));
      best = Select(Lt(d, best), d, best);
    }
    double b = ReduceMin(best, std::numeric_limits<double>::infinity());
    if (j < segs.n) {
      const SegmentSoA tail{segs.ax + j, segs.ay + j, segs.bx + j,
                            segs.by + j, segs.dx + j, segs.dy + j,
                            segs.len2 + j, segs.n - j};
      const double tb = scalar::PolylineSquaredDistanceToPoint(tail, px, py);
      b = tb < b ? tb : b;
    }
    return b;
  }

  static void SegmentsSquaredDistanceToPoint(const SegmentSoA& segs,
                                             double px, double py,
                                             double* out) {
    const VD vpx = Splat(px);
    const VD vpy = Splat(py);
    size_t j = 0;
    for (; j + W <= segs.n; j += W) {
      Store(out + j,
            SqDistPointSegLaneSeg(vpx, vpy, Load(segs.ax + j),
                                  Load(segs.ay + j), Load(segs.dx + j),
                                  Load(segs.dy + j), Load(segs.len2 + j)));
    }
    if (j < segs.n) {
      const SegmentSoA tail{segs.ax + j, segs.ay + j, segs.bx + j,
                            segs.by + j, segs.dx + j, segs.dy + j,
                            segs.len2 + j, segs.n - j};
      scalar::SegmentsSquaredDistanceToPoint(tail, px, py, out + j);
    }
  }

  /// Per-lane SquaredDistanceSegmentToSegment of the uniform query segment
  /// (scalar form qa/qd/qlen2, splatted form passed alongside) against one
  /// W-wide block of target lane segments starting at index j. The shared
  /// body of the reduced and store seg-to-segments kernels.
  static VD SqDistSegSegBlock(double qax_s, double qay_s, double qdx_s,
                              double qdy_s, double qlen2_s, VD qax, VD qay,
                              VD qbx, VD qby, VD qdx, VD qdy,
                              const SegmentSoA& segs, size_t j) {
    const VD eps = Splat(1e-12);
    const VD neps = Splat(-1e-12);
    const VD zero = Splat(0.0);
    const VD sax = Load(segs.ax + j);
    const VD say = Load(segs.ay + j);
    const VD sbx = Load(segs.bx + j);
    const VD sby = Load(segs.by + j);
    const VD sdx = Load(segs.dx + j);
    const VD sdy = Load(segs.dy + j);
    const VD slen2 = Load(segs.len2 + j);
    // Orientation signs as (positive, negative) mask pairs; cross products
    // written exactly as Orientation's (b - a).Cross(c - a).
    const VD c1 = qdx * (say - qay) - qdy * (sax - qax);
    const VD c2 = qdx * (sby - qay) - qdy * (sbx - qax);
    const VD c3 = sdx * (qay - say) - sdy * (qax - sax);
    const VD c4 = sdx * (qby - say) - sdy * (qbx - sax);
    const VL p1 = Gt(c1, eps), n1 = Lt(c1, neps);
    const VL p2 = Gt(c2, eps), n2 = Lt(c2, neps);
    const VL p3 = Gt(c3, eps), n3 = Lt(c3, neps);
    const VL p4 = Gt(c4, eps), n4 = Lt(c4, neps);
    // o1 != o2 in sign space is (p1 ^ p2) | (n1 ^ n2); oK == 0 is
    // neither-positive-nor-negative.
    const VL o12neq = (p1 ^ p2) | (n1 ^ n2);
    const VL o34neq = (p3 ^ p4) | (n3 ^ n4);
    const VL z1 = ~p1 & ~n1;
    const VL z2 = ~p2 & ~n2;
    const VL z3 = ~p3 & ~n3;
    const VL z4 = ~p4 & ~n4;
    const VL inter = (o12neq & o34neq) |
                     (z1 & OnSegV(sax, say, qax, qay, qbx, qby)) |
                     (z2 & OnSegV(sbx, sby, qax, qay, qbx, qby)) |
                     (z3 & OnSegV(qax, qay, sax, say, sbx, sby)) |
                     (z4 & OnSegV(qbx, qby, sax, say, sbx, sby));
    // The four endpoint distances, exactly SquaredDistanceSegmentToSegment's
    // operand orders (d1/d2 against the target lane segment, d3/d4 against
    // the uniform query segment).
    const VD d1 = SqDistPointSegLaneSeg(qax, qay, sax, say, sdx, sdy, slen2);
    const VD d2 = SqDistPointSegLaneSeg(qbx, qby, sax, say, sdx, sdy, slen2);
    const VD d3 = SqDistPointSegUniformSeg(sax, say, qax_s, qay_s, qdx_s,
                                           qdy_s, qlen2_s);
    const VD d4 = SqDistPointSegUniformSeg(sbx, sby, qax_s, qay_s, qdx_s,
                                           qdy_s, qlen2_s);
    const VD m12 = Select(Lt(d2, d1), d2, d1);
    const VD m34 = Select(Lt(d4, d3), d4, d3);
    const VD dmin = Select(Lt(m34, m12), m34, m12);
    return Select(inter, zero, dmin);
  }

  static double SegmentToPolylineSquaredDistance(double qax_s, double qay_s,
                                                 double qbx_s, double qby_s,
                                                 const SegmentSoA& segs) {
    const double qdx_s = qbx_s - qax_s;
    const double qdy_s = qby_s - qay_s;
    const double qlen2_s = qdx_s * qdx_s + qdy_s * qdy_s;
    const VD qax = Splat(qax_s);
    const VD qay = Splat(qay_s);
    const VD qbx = Splat(qbx_s);
    const VD qby = Splat(qby_s);
    const VD qdx = Splat(qdx_s);
    const VD qdy = Splat(qdy_s);
    VD best = Splat(std::numeric_limits<double>::infinity());
    size_t j = 0;
    for (; j + W <= segs.n; j += W) {
      const VD d = SqDistSegSegBlock(qax_s, qay_s, qdx_s, qdy_s, qlen2_s,
                                     qax, qay, qbx, qby, qdx, qdy, segs, j);
      best = Select(Lt(d, best), d, best);
    }
    double b = ReduceMin(best, std::numeric_limits<double>::infinity());
    if (j < segs.n) {
      const SegmentSoA tail{segs.ax + j, segs.ay + j, segs.bx + j,
                            segs.by + j, segs.dx + j, segs.dy + j,
                            segs.len2 + j, segs.n - j};
      const double tb = scalar::SegmentToPolylineSquaredDistance(
          qax_s, qay_s, qbx_s, qby_s, tail);
      b = tb < b ? tb : b;
    }
    return b;
  }

  static void SegmentToSegmentsSquaredDistances(double qax_s, double qay_s,
                                                double qbx_s, double qby_s,
                                                const SegmentSoA& segs,
                                                double* out) {
    const double qdx_s = qbx_s - qax_s;
    const double qdy_s = qby_s - qay_s;
    const double qlen2_s = qdx_s * qdx_s + qdy_s * qdy_s;
    const VD qax = Splat(qax_s);
    const VD qay = Splat(qay_s);
    const VD qbx = Splat(qbx_s);
    const VD qby = Splat(qby_s);
    const VD qdx = Splat(qdx_s);
    const VD qdy = Splat(qdy_s);
    size_t j = 0;
    for (; j + W <= segs.n; j += W) {
      Store(out + j,
            SqDistSegSegBlock(qax_s, qay_s, qdx_s, qdy_s, qlen2_s, qax, qay,
                              qbx, qby, qdx, qdy, segs, j));
    }
    if (j < segs.n) {
      const SegmentSoA tail{segs.ax + j, segs.ay + j, segs.bx + j,
                            segs.by + j, segs.dx + j, segs.dy + j,
                            segs.len2 + j, segs.n - j};
      scalar::SegmentToSegmentsSquaredDistances(qax_s, qay_s, qbx_s, qby_s,
                                                tail, out + j);
    }
  }

  static void PairsWithinRadii(const double* ax, const double* ay,
                               const double* bx, const double* by,
                               const double* r, size_t n, uint8_t* within) {
    size_t i = 0;
    for (; i + W <= n; i += W) {
      const VD dx = Load(ax + i) - Load(bx + i);
      const VD dy = Load(ay + i) - Load(by + i);
      StoreMask(within + i, Lt(Sqrt(dx * dx + dy * dy), Load(r + i)));
    }
    if (i < n) {
      scalar::PairsWithinRadii(ax + i, ay + i, bx + i, by + i, r + i, n - i,
                               within + i);
    }
  }

  static void PointWithinRadiusOfPoints(double ux, double uy,
                                        const double* wx, const double* wy,
                                        const double* r, size_t n,
                                        uint8_t* within) {
    const VD vux = Splat(ux);
    const VD vuy = Splat(uy);
    size_t i = 0;
    for (; i + W <= n; i += W) {
      const VD dx = vux - Load(wx + i);
      const VD dy = vuy - Load(wy + i);
      StoreMask(within + i, Lt(Sqrt(dx * dx + dy * dy), Load(r + i)));
    }
    if (i < n) {
      scalar::PointWithinRadiusOfPoints(ux, uy, wx + i, wy + i, r + i, n - i,
                                        within + i);
    }
  }

  static void CirclesContainPoints(const double* cx, const double* cy,
                                   const double* cr, const double* px,
                                   const double* py, size_t n, bool strict,
                                   uint8_t* inside) {
    size_t i = 0;
    for (; i + W <= n; i += W) {
      const VD dx = Load(cx + i) - Load(px + i);
      const VD dy = Load(cy + i) - Load(py + i);
      const VD d2 = dx * dx + dy * dy;
      const VD r = Load(cr + i);
      const VD r2 = r * r;
      StoreMask(inside + i, strict ? Lt(d2, r2) : Le(d2, r2));
    }
    if (i < n) {
      scalar::CirclesContainPoints(cx + i, cy + i, cr + i, px + i, py + i,
                                   n - i, strict, inside + i);
    }
  }

  static void CircleDistanceToPoints(double cx, double cy, double cr,
                                     const double* px, const double* py,
                                     size_t n, double* out) {
    const VD vcx = Splat(cx);
    const VD vcy = Splat(cy);
    const VD vcr = Splat(cr);
    const VD zero = Splat(0.0);
    size_t i = 0;
    for (; i + W <= n; i += W) {
      const VD dx = Load(px + i) - vcx;
      const VD dy = Load(py + i) - vcy;
      const VD v = Sqrt(dx * dx + dy * dy) - vcr;
      Store(out + i, Select(Lt(zero, v), v, zero));
    }
    if (i < n) {
      scalar::CircleDistanceToPoints(cx, cy, cr, px + i, py + i, n - i,
                                     out + i);
    }
  }

  static void CirclePairsGapBelow(const double* ax, const double* ay,
                                  const double* ar, const double* bx,
                                  const double* by, const double* br,
                                  const double* thr, size_t n,
                                  uint8_t* below) {
    const VD zero = Splat(0.0);
    size_t i = 0;
    for (; i + W <= n; i += W) {
      const VD dx = Load(ax + i) - Load(bx + i);
      const VD dy = Load(ay + i) - Load(by + i);
      const VD v = Sqrt(dx * dx + dy * dy) - Load(ar + i) - Load(br + i);
      const VD gap = Select(Lt(zero, v), v, zero);
      StoreMask(below + i, Lt(gap, Load(thr + i)));
    }
    if (i < n) {
      scalar::CirclePairsGapBelow(ax + i, ay + i, ar + i, bx + i, by + i,
                                  br + i, thr + i, n - i, below + i);
    }
  }

  static void KalmanPredict4(const double* f, const double* q, double* state,
                             double* cov) {
    // Always uses 4-lane rows (the system is fixed 4x4) regardless of W;
    // AVX-512F implies the 256-bit ops this needs.
    typedef double kv4 __attribute__((vector_size(32)));
    // state <- F state: Matrix::Apply's sequential per-row accumulation.
    double s[4];
    for (int r = 0; r < 4; ++r) {
      double acc = 0.0;
      for (int c = 0; c < 4; ++c) acc += f[r * 4 + c] * state[c];
      s[r] = acc;
    }
    for (int r = 0; r < 4; ++r) state[r] = s[r];
    const auto splat4 = [](double x) {
      kv4 v;
      for (int l = 0; l < 4; ++l) v[l] = x;
      return v;
    };
    const auto load4 = [](const double* p) {
      kv4 v;
      __builtin_memcpy(&v, p, sizeof(v));
      return v;
    };
    // Rows of cov, F^T, and Q; the lane axis is the column index, so
    // Matrix::operator*'s k-ascending accumulation (with its v == 0.0 skip,
    // uniform across columns) is reproduced per lane exactly.
    kv4 covr[4], ftr[4];
    for (int k = 0; k < 4; ++k) {
      covr[k] = load4(cov + k * 4);
      kv4 v;
      for (int c = 0; c < 4; ++c) v[c] = f[c * 4 + k];
      ftr[k] = v;
    }
    kv4 t1[4];
    for (int r = 0; r < 4; ++r) {
      kv4 acc = splat4(0.0);
      for (int k = 0; k < 4; ++k) {
        const double v = f[r * 4 + k];
        if (v == 0.0) continue;
        acc += splat4(v) * covr[k];
      }
      t1[r] = acc;
    }
    for (int r = 0; r < 4; ++r) {
      kv4 acc = splat4(0.0);
      for (int k = 0; k < 4; ++k) {
        const double v = t1[r][k];
        if (v == 0.0) continue;
        acc += splat4(v) * ftr[k];
      }
      const kv4 row = acc + load4(q + r * 4);
      __builtin_memcpy(cov + r * 4, &row, sizeof(row));
    }
  }
};

}  // namespace internal
}  // namespace simd
}  // namespace proxdet

#endif  // PROXDET_GEOM_SIMD_KERNELS_IMPL_H_
