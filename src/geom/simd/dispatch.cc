// Backend selection for the batched geometry kernels.
//
// At first use the widest compiled backend the CPU supports is picked, but
// only after a bitwise self-check: every kernel runs on deterministic
// pseudo-random batches (degenerate lanes included) and its output buffers
// are compared byte-for-byte against the scalar reference. A backend that
// deviates in a single bit is rejected and the next-narrower one is tried,
// down to scalar — so a miscompiled or misbehaving vector unit can slow the
// run down but can never change detector output. PROXDET_SIMD_FORCE
// (scalar|w4|w8) pins the choice for A/B runs; the forced backend is still
// self-checked.

#include <cstdlib>
#include <cstring>
#include <initializer_list>

#include "geom/simd/kernel_table.h"
#include "geom/simd/simd.h"

namespace proxdet {
namespace simd {
namespace {

using internal::KernelTable;

/// SplitMix64 — tiny, seedable, and stable across platforms; the self-check
/// must test the same batches every run.
struct Rng {
  uint64_t state;
  uint64_t Next() {
    state += 0x9e3779b97f4a7c15ull;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  /// Uniform double in [-500, 500] — the detector's coordinate scale.
  double Coord() {
    return (double)(Next() >> 11) * (1.0 / 9007199254740992.0) * 1000.0 -
           500.0;
  }
  /// Uniform double in [0, 50] for radii/thresholds.
  double Radius() {
    return (double)(Next() >> 11) * (1.0 / 9007199254740992.0) * 50.0;
  }
};

// Batch size for the check: not a multiple of 4 or 8, so both vector widths
// exercise their main loop AND their scalar tail.
constexpr size_t kN = 37;

bool BitEq(const double* a, const double* b, size_t n) {
  return std::memcmp(a, b, n * sizeof(double)) == 0;
}
bool BitEq8(const uint8_t* a, const uint8_t* b, size_t n) {
  return std::memcmp(a, b, n) == 0;
}

/// Fill a SegmentSoA backing store; every 5th segment degenerate (a == b)
/// to exercise the len2 <= 0 lanes.
struct SegBatch {
  double ax[kN], ay[kN], bx[kN], by[kN], dx[kN], dy[kN], len2[kN];
  SegmentSoA View(size_t n) const {
    return SegmentSoA{ax, ay, bx, by, dx, dy, len2, n};
  }
  void Fill(Rng& rng) {
    for (size_t i = 0; i < kN; ++i) {
      ax[i] = rng.Coord();
      ay[i] = rng.Coord();
      if (i % 5 == 4) {
        bx[i] = ax[i];
        by[i] = ay[i];
      } else {
        bx[i] = rng.Coord();
        by[i] = rng.Coord();
      }
      dx[i] = bx[i] - ax[i];
      dy[i] = by[i] - ay[i];
      len2[i] = dx[i] * dx[i] + dy[i] * dy[i];
    }
  }
};

bool VerifyTable(const KernelTable& t) {
  const KernelTable& ref = internal::ScalarTable();
  Rng rng{0x70726f7864657421ull};  // Fixed seed: same batches every run.
  SegBatch segs;
  segs.Fill(rng);
  double px[kN], py[kN], qx[kN], qy[kN], r1[kN], r2[kN], thr[kN];
  double lox[kN], loy[kN], hix[kN], hiy[kN];
  for (size_t i = 0; i < kN; ++i) {
    px[i] = rng.Coord();
    py[i] = rng.Coord();
    qx[i] = rng.Coord();
    qy[i] = rng.Coord();
    r1[i] = rng.Radius();
    r2[i] = rng.Radius();
    thr[i] = rng.Radius();
    const double cx = rng.Coord(), cy = rng.Coord();
    lox[i] = cx - rng.Radius();
    hix[i] = cx + rng.Radius();
    loy[i] = cy - rng.Radius();
    hiy[i] = cy + rng.Radius();
  }
  // Nudge some points onto box edges / degenerate boxes so the closed
  // comparisons are exercised on exact boundaries.
  px[3] = lox[3];
  py[7] = hiy[7];
  lox[11] = hix[11] = px[11];

  double got_d[kN], want_d[kN];
  uint8_t got_m[kN], want_m[kN];

  // Every batch kernel runs at a tail-heavy size (kN) and a sub-width size
  // (3) so the pure-tail path of both vector backends is also verified.
  for (size_t n : {kN, size_t{3}}) {
    t.points_in_boxes(px, py, lox, loy, hix, hiy, n, got_m);
    ref.points_in_boxes(px, py, lox, loy, hix, hiy, n, want_m);
    if (!BitEq8(got_m, want_m, n)) return false;

    for (size_t s : {size_t{0}, size_t{4}}) {  // Regular + degenerate segment.
      t.segment_sqdist_to_points(segs.ax[s], segs.ay[s], segs.dx[s],
                                 segs.dy[s], segs.len2[s], px, py, n, got_d);
      ref.segment_sqdist_to_points(segs.ax[s], segs.ay[s], segs.dx[s],
                                   segs.dy[s], segs.len2[s], px, py, n,
                                   want_d);
      if (!BitEq(got_d, want_d, n)) return false;
    }

    const SegmentSoA view = segs.View(n);
    t.polyline_sqdist_to_points(view, px, py, kN, got_d);
    ref.polyline_sqdist_to_points(view, px, py, kN, want_d);
    if (!BitEq(got_d, want_d, kN)) return false;

    for (size_t i = 0; i < kN; ++i) {
      const double got = t.polyline_sqdist_to_point(view, px[i], py[i]);
      const double want = ref.polyline_sqdist_to_point(view, px[i], py[i]);
      if (std::memcmp(&got, &want, sizeof(double)) != 0) return false;
      const double got_s = t.segment_to_polyline_sqdist(
          px[i], py[i], qx[i], qy[i], view);
      const double want_s = ref.segment_to_polyline_sqdist(
          px[i], py[i], qx[i], qy[i], view);
      if (std::memcmp(&got_s, &want_s, sizeof(double)) != 0) return false;
    }

    // Store variants: per-lane outputs over the same SoA (degenerate lanes
    // included for the point form; the seg-seg form is only ever fed
    // non-degenerate targets by contract but is checked on them all the
    // same — the lane math is total either way).
    t.segments_sqdist_to_point(view, px[0], py[0], got_d);
    ref.segments_sqdist_to_point(view, px[0], py[0], want_d);
    if (!BitEq(got_d, want_d, n)) return false;
    t.segment_to_segments_sqdists(px[1], py[1], qx[1], qy[1], view, got_d);
    ref.segment_to_segments_sqdists(px[1], py[1], qx[1], qy[1], view, want_d);
    if (!BitEq(got_d, want_d, n)) return false;

    t.pairs_within_radii(px, py, qx, qy, r1, n, got_m);
    ref.pairs_within_radii(px, py, qx, qy, r1, n, want_m);
    if (!BitEq8(got_m, want_m, n)) return false;

    t.point_within_radius_of_points(px[0], py[0], qx, qy, r1, n, got_m);
    ref.point_within_radius_of_points(px[0], py[0], qx, qy, r1, n, want_m);
    if (!BitEq8(got_m, want_m, n)) return false;

    for (bool strict : {false, true}) {
      t.circles_contain_points(qx, qy, r1, px, py, n, strict, got_m);
      ref.circles_contain_points(qx, qy, r1, px, py, n, strict, want_m);
      if (!BitEq8(got_m, want_m, n)) return false;
    }

    t.circle_dist_to_points(qx[0], qy[0], r1[0], px, py, n, got_d);
    ref.circle_dist_to_points(qx[0], qy[0], r1[0], px, py, n, want_d);
    if (!BitEq(got_d, want_d, n)) return false;

    t.circle_pairs_gap_below(px, py, r1, qx, qy, r2, thr, n, got_m);
    ref.circle_pairs_gap_below(px, py, r1, qx, qy, r2, thr, n, want_m);
    if (!BitEq8(got_m, want_m, n)) return false;
  }

  // Kalman predict: the constant-velocity F (zeros exercise operator*'s
  // skip) on a random state/covariance, iterated a few steps so covariance
  // terms mix.
  const double dt = 1.0;
  double f[16] = {1, 0, dt, 0, 0, 1, 0, dt, 0, 0, 1, 0, 0, 0, 0, 1};
  double q[16], st_got[4], st_want[4], cov_got[16], cov_want[16];
  for (int i = 0; i < 16; ++i) q[i] = rng.Radius() * 1e-3;
  for (int i = 0; i < 4; ++i) st_got[i] = st_want[i] = rng.Coord();
  for (int i = 0; i < 16; ++i) cov_got[i] = cov_want[i] = rng.Radius();
  for (int step = 0; step < 3; ++step) {
    t.kalman_predict4(f, q, st_got, cov_got);
    ref.kalman_predict4(f, q, st_want, cov_want);
  }
  if (std::memcmp(st_got, st_want, sizeof(st_got)) != 0) return false;
  if (std::memcmp(cov_got, cov_want, sizeof(cov_got)) != 0) return false;
  return true;
}

struct Dispatch {
  const KernelTable* table;
  Backend backend;
  bool self_check_passed;
};

bool BackendAvailable(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return true;
    case Backend::kW4:
#if defined(PROXDET_SIMD_HAS_W4)
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
    case Backend::kW8:
#if defined(PROXDET_SIMD_HAS_W8)
      return __builtin_cpu_supports("avx512f");
#else
      return false;
#endif
  }
  return false;
}

const KernelTable& TableFor(Backend b) {
  switch (b) {
#if defined(PROXDET_SIMD_HAS_W4)
    case Backend::kW4:
      return internal::W4Table();
#endif
#if defined(PROXDET_SIMD_HAS_W8)
    case Backend::kW8:
      return internal::W8Table();
#endif
    default:
      return internal::ScalarTable();
  }
}

Dispatch MakeDispatch() {
  Dispatch d{&internal::ScalarTable(), Backend::kScalar, true};
  Backend order[2] = {Backend::kW8, Backend::kW4};
  int num_candidates = 2;
  if (const char* force = std::getenv("PROXDET_SIMD_FORCE")) {
    Backend want = Backend::kScalar;
    if (std::strcmp(force, "w8") == 0) {
      want = Backend::kW8;
    } else if (std::strcmp(force, "w4") == 0) {
      want = Backend::kW4;
    }
    // A forced backend is the only candidate (and still self-checked);
    // forcing scalar, or an unavailable backend, leaves scalar installed.
    order[0] = want;
    num_candidates = want == Backend::kScalar ? 0 : 1;
  }
  for (int i = 0; i < num_candidates; ++i) {
    const Backend b = order[i];
    if (!BackendAvailable(b)) continue;
    const KernelTable& t = TableFor(b);
    if (VerifyTable(t)) {
      d.table = &t;
      d.backend = b;
      return d;
    }
    d.self_check_passed = false;  // Compiled + supported, yet wrong: reject.
  }
  return d;
}

Dispatch& GetDispatch() {
  static Dispatch d = MakeDispatch();
  return d;
}

}  // namespace

Backend ActiveBackend() { return GetDispatch().backend; }

const char* BackendName(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kW4:
      return "w4";
    case Backend::kW8:
      return "w8";
  }
  return "?";
}

bool CompiledWithSimd() {
#if defined(PROXDET_SIMD_HAS_W4) || defined(PROXDET_SIMD_HAS_W8)
  return true;
#else
  return false;
#endif
}

bool SelfCheckPassed() { return GetDispatch().self_check_passed; }

bool SetActiveBackendForTest(Backend b) {
  if (!BackendAvailable(b)) return false;
  Dispatch& d = GetDispatch();
  d.table = &TableFor(b);
  d.backend = b;
  return true;
}

void PointsInBoxes(const double* px, const double* py, const double* lox,
                   const double* loy, const double* hix, const double* hiy,
                   size_t n, uint8_t* inside) {
  GetDispatch().table->points_in_boxes(px, py, lox, loy, hix, hiy, n, inside);
}

void SegmentSquaredDistanceToPoints(double ax, double ay, double dx,
                                    double dy, double len2, const double* px,
                                    const double* py, size_t n, double* out) {
  GetDispatch().table->segment_sqdist_to_points(ax, ay, dx, dy, len2, px, py,
                                                n, out);
}

void PolylineSquaredDistanceToPoints(const SegmentSoA& segs, const double* px,
                                     const double* py, size_t n, double* out) {
  GetDispatch().table->polyline_sqdist_to_points(segs, px, py, n, out);
}

double PolylineSquaredDistanceToPoint(const SegmentSoA& segs, double px,
                                      double py) {
  return GetDispatch().table->polyline_sqdist_to_point(segs, px, py);
}

double SegmentToPolylineSquaredDistance(double qax, double qay, double qbx,
                                        double qby, const SegmentSoA& segs) {
  return GetDispatch().table->segment_to_polyline_sqdist(qax, qay, qbx, qby,
                                                         segs);
}

void SegmentsSquaredDistanceToPoint(const SegmentSoA& segs, double px,
                                    double py, double* out) {
  GetDispatch().table->segments_sqdist_to_point(segs, px, py, out);
}

void SegmentToSegmentsSquaredDistances(double qax, double qay, double qbx,
                                       double qby, const SegmentSoA& segs,
                                       double* out) {
  GetDispatch().table->segment_to_segments_sqdists(qax, qay, qbx, qby, segs,
                                                   out);
}

void PairsWithinRadii(const double* ax, const double* ay, const double* bx,
                      const double* by, const double* r, size_t n,
                      uint8_t* within) {
  GetDispatch().table->pairs_within_radii(ax, ay, bx, by, r, n, within);
}

void PointWithinRadiusOfPoints(double ux, double uy, const double* wx,
                               const double* wy, const double* r, size_t n,
                               uint8_t* within) {
  GetDispatch().table->point_within_radius_of_points(ux, uy, wx, wy, r, n,
                                                     within);
}

void CirclesContainPoints(const double* cx, const double* cy,
                          const double* cr, const double* px,
                          const double* py, size_t n, bool strict,
                          uint8_t* inside) {
  GetDispatch().table->circles_contain_points(cx, cy, cr, px, py, n, strict,
                                              inside);
}

void CircleDistanceToPoints(double cx, double cy, double cr, const double* px,
                            const double* py, size_t n, double* out) {
  GetDispatch().table->circle_dist_to_points(cx, cy, cr, px, py, n, out);
}

void CirclePairsGapBelow(const double* ax, const double* ay, const double* ar,
                         const double* bx, const double* by, const double* br,
                         const double* thr, size_t n, uint8_t* below) {
  GetDispatch().table->circle_pairs_gap_below(ax, ay, ar, bx, by, br, thr, n,
                                              below);
}

void KalmanPredict4(const double f[16], const double q[16], double state[4],
                    double cov[16]) {
  GetDispatch().table->kalman_predict4(f, q, state, cov);
}

}  // namespace simd
}  // namespace proxdet
