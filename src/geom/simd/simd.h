#ifndef PROXDET_GEOM_SIMD_SIMD_H_
#define PROXDET_GEOM_SIMD_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace proxdet {
namespace simd {

/// Batched geometry kernels over SoA (structure-of-arrays) operands.
///
/// Contract: every kernel is **bit-exact** with the scalar geometry in
/// src/geom — the per-lane operation sequence is the scalar sequence (same
/// adds, multiplies, divides, sqrt and comparisons, in the same order), so
/// a lane computes the identical IEEE-754 double the scalar call would.
/// Vectorization only runs independent lanes side by side; the one place a
/// cross-lane operation appears (min-reductions in the *SquaredDistance*
/// scans) it folds non-negative finite values, where min is associative
/// and commutative *in value and in bits* (no NaNs, no -0.0 can arise from
/// dx*dx + dy*dy forms), and IEEE sqrt is correctly rounded hence
/// monotone, so sqrt(min d^2) == min sqrt(d^2) bit-for-bit. DESIGN.md §11
/// spells the argument out.
///
/// Backends: a scalar reference (always compiled; also the tail loop of
/// every vector kernel), a 4-wide AVX2 unit and an 8-wide AVX-512F unit
/// (compiled only when PROXDET_SIMD=ON and the compiler supports the
/// flags). Dispatch picks the widest backend the running CPU supports —
/// but only after a one-time bitwise self-check against the scalar
/// reference on deterministic pseudo-random batches; a backend that fails
/// verification is never used (the "runtime-verified scalar fallback").
/// Vector translation units are built with -ffp-contract=off so no FMA
/// contraction can perturb the scalar-identical operation sequence.

/// SoA view of a polyline's segments. Arrays hold, per segment i:
/// endpoints (ax,ay)-(bx,by), the precomputed direction d = b - a and its
/// squared norm len2 = dx*dx + dy*dy. The precomputed fields are the exact
/// doubles the scalar path computes per call (pure functions of a and b),
/// cached once at build time — batched queries re-derive nothing.
/// A single-point polyline is represented as one degenerate segment
/// (a == b, d == 0, len2 == 0); the degenerate-segment guard then yields
/// bitwise the same distance as the scalar point-point special case.
struct SegmentSoA {
  const double* ax = nullptr;
  const double* ay = nullptr;
  const double* bx = nullptr;
  const double* by = nullptr;
  const double* dx = nullptr;
  const double* dy = nullptr;
  const double* len2 = nullptr;
  size_t n = 0;
};

enum class Backend : int { kScalar = 0, kW4 = 1, kW8 = 2 };

/// The backend dispatch selected (after the runtime self-check). Stable
/// after the first call.
Backend ActiveBackend();
const char* BackendName(Backend b);
/// True when the simd library was configured with PROXDET_SIMD=ON (vector
/// backends compiled in — though the CPU still decides what runs).
bool CompiledWithSimd();
/// False only when a compiled vector backend failed the startup bitwise
/// self-check and was rejected (the run then proceeds on scalar).
bool SelfCheckPassed();
/// Test hook: force dispatch onto a specific backend. Returns false (and
/// changes nothing) when that backend is not compiled in or not supported
/// by the CPU. Not thread-safe; call before any parallel region. The
/// PROXDET_SIMD_FORCE environment variable (scalar|w4|w8) applies the same
/// override at first use.
bool SetActiveBackendForTest(Backend b);

// ---------------------------------------------------------------------------
// Batched kernels (dispatched). All outputs are written for all n lanes;
// uint8_t outputs are exactly 0 or 1.
// ---------------------------------------------------------------------------

/// Lane i: closed containment of (px[i], py[i]) in the box
/// [lox[i], hix[i]] x [loy[i], hiy[i]] — BBox::Contains' comparison order.
void PointsInBoxes(const double* px, const double* py, const double* lox,
                   const double* loy, const double* hix, const double* hiy,
                   size_t n, uint8_t* inside);

/// Lane i: SquaredDistancePointToSegment((px[i], py[i]), segment), with the
/// segment given in precomputed form (a, d = b - a, len2 = |d|^2).
void SegmentSquaredDistanceToPoints(double ax, double ay, double dx,
                                    double dy, double len2, const double* px,
                                    const double* py, size_t n, double* out);

/// Lane i: Polyline::SquaredDistanceToPoint((px[i], py[i])) over the SoA
/// segments (+infinity when segs.n == 0, matching the empty polyline).
void PolylineSquaredDistanceToPoints(const SegmentSoA& segs, const double* px,
                                     const double* py, size_t n, double* out);

/// One point against the whole polyline, vectorized across segments
/// (lane = segment, min-reduced). Same value conventions as above.
double PolylineSquaredDistanceToPoint(const SegmentSoA& segs, double px,
                                      double py);

/// Store variant of the above: lane i gets the squared distance from the
/// point to segment i (no reduction). Ranged minima taken over out[] in
/// index order equal the reduced call on the sub-polyline bit-for-bit (the
/// lane values are position-independent and min over non-negative finite
/// doubles is fold-order-free) — callers batch MANY polylines as one
/// concatenated SoA and reduce per range.
void SegmentsSquaredDistanceToPoint(const SegmentSoA& segs, double px,
                                    double py, double* out);

/// One query segment (qa)-(qb) against the whole polyline, vectorized
/// across target segments: per lane the exact
/// SquaredDistanceSegmentToSegment (including the SegmentsIntersect
/// orientation/on-segment tests, evaluated branchlessly with identical
/// comparison outcomes), min-reduced. +infinity when segs.n == 0.
double SegmentToPolylineSquaredDistance(double qax, double qay, double qbx,
                                        double qby, const SegmentSoA& segs);

/// Store variant of SegmentToPolylineSquaredDistance: lane i gets the exact
/// SquaredDistanceSegmentToSegment between the query segment and target
/// segment i. Same concatenated-SoA / ranged-min contract as
/// SegmentsSquaredDistanceToPoint. NOTE: like the reduced form, the
/// degenerate-segment SoA encoding of a single-point polyline is NOT
/// bit-safe here — stage single-point paths through the point kernels.
void SegmentToSegmentsSquaredDistances(double qax, double qay, double qbx,
                                       double qby, const SegmentSoA& segs,
                                       double* out);

/// Lane i: Distance((ax[i], ay[i]), (bx[i], by[i])) < r[i] — the naive
/// engine's strict pair predicate.
void PairsWithinRadii(const double* ax, const double* ay, const double* bx,
                      const double* by, const double* r, size_t n,
                      uint8_t* within);

/// Lane i: Distance((ux, uy), (wx[i], wy[i])) < r[i] — one user against a
/// staged candidate batch.
void PointWithinRadiusOfPoints(double ux, double uy, const double* wx,
                               const double* wy, const double* r, size_t n,
                               uint8_t* within);

/// Lane i: containment of (px[i], py[i]) in circle i (strict uses
/// Circle::ContainsStrict's d^2 < r^2, else Contains' d^2 <= r^2).
void CirclesContainPoints(const double* cx, const double* cy,
                          const double* cr, const double* px,
                          const double* py, size_t n, bool strict,
                          uint8_t* inside);

/// Lane i: DistancePointToCircle((px[i], py[i]), circle) — max(0, d - r).
void CircleDistanceToPoints(double cx, double cy, double cr, const double* px,
                            const double* py, size_t n, double* out);

/// Lane i: DistanceCircleToCircle(circle a_i, circle b_i) < thr[i]
/// (strict — the per-epoch pair check's ShapeMinDistanceBelow form).
void CirclePairsGapBelow(const double* ax, const double* ay, const double* ar,
                         const double* bx, const double* by, const double* br,
                         const double* thr, size_t n, uint8_t* below);

/// One constant-velocity Kalman predict step on the fixed 4x4 system:
/// state <- F state (Matrix::Apply's accumulation order) and
/// cov <- F cov F^T + Q with Matrix::operator*'s exact semantics —
/// including its `if (v == 0.0) continue;` accumulation skip, which is
/// observable in the result's signed zeros. Row-major 4x4 arrays.
void KalmanPredict4(const double f[16], const double q[16], double state[4],
                    double cov[16]);

// ---------------------------------------------------------------------------
// Scalar reference implementations (never vectorized; the dispatch target
// of the scalar backend, the tail loop of the vector backends, and the
// ground truth the property tests and the startup self-check compare
// against bitwise).
// ---------------------------------------------------------------------------
namespace scalar {
void PointsInBoxes(const double* px, const double* py, const double* lox,
                   const double* loy, const double* hix, const double* hiy,
                   size_t n, uint8_t* inside);
void SegmentSquaredDistanceToPoints(double ax, double ay, double dx,
                                    double dy, double len2, const double* px,
                                    const double* py, size_t n, double* out);
void PolylineSquaredDistanceToPoints(const SegmentSoA& segs, const double* px,
                                     const double* py, size_t n, double* out);
double PolylineSquaredDistanceToPoint(const SegmentSoA& segs, double px,
                                      double py);
void SegmentsSquaredDistanceToPoint(const SegmentSoA& segs, double px,
                                    double py, double* out);
double SegmentToPolylineSquaredDistance(double qax, double qay, double qbx,
                                        double qby, const SegmentSoA& segs);
void SegmentToSegmentsSquaredDistances(double qax, double qay, double qbx,
                                       double qby, const SegmentSoA& segs,
                                       double* out);
void PairsWithinRadii(const double* ax, const double* ay, const double* bx,
                      const double* by, const double* r, size_t n,
                      uint8_t* within);
void PointWithinRadiusOfPoints(double ux, double uy, const double* wx,
                               const double* wy, const double* r, size_t n,
                               uint8_t* within);
void CirclesContainPoints(const double* cx, const double* cy,
                          const double* cr, const double* px,
                          const double* py, size_t n, bool strict,
                          uint8_t* inside);
void CircleDistanceToPoints(double cx, double cy, double cr, const double* px,
                            const double* py, size_t n, double* out);
void CirclePairsGapBelow(const double* ax, const double* ay, const double* ar,
                         const double* bx, const double* by, const double* br,
                         const double* thr, size_t n, uint8_t* below);
void KalmanPredict4(const double f[16], const double q[16], double state[4],
                    double cov[16]);
}  // namespace scalar

}  // namespace simd
}  // namespace proxdet

#endif  // PROXDET_GEOM_SIMD_SIMD_H_
