// 8-wide (512-bit, AVX-512F) backend. This TU is compiled with
// -mavx512f -ffp-contract=off -fno-math-errno; see kernels_impl.h for the
// bit-exactness rules the instantiation relies on.

#include "geom/simd/kernel_table.h"
#include "geom/simd/kernels_impl.h"

namespace proxdet {
namespace simd {
namespace internal {

namespace {
typedef double v8d __attribute__((vector_size(64)));
typedef long long v8l __attribute__((vector_size(64)));
using K = Kernels<v8d, v8l, 8>;
}  // namespace

const KernelTable& W8Table() {
  static const KernelTable table{
      &K::PointsInBoxes,
      &K::SegmentSquaredDistanceToPoints,
      &K::PolylineSquaredDistanceToPoints,
      &K::PolylineSquaredDistanceToPoint,
      &K::SegmentsSquaredDistanceToPoint,
      &K::SegmentToPolylineSquaredDistance,
      &K::SegmentToSegmentsSquaredDistances,
      &K::PairsWithinRadii,
      &K::PointWithinRadiusOfPoints,
      &K::CirclesContainPoints,
      &K::CircleDistanceToPoints,
      &K::CirclePairsGapBelow,
      &K::KalmanPredict4,
  };
  return table;
}

}  // namespace internal
}  // namespace simd
}  // namespace proxdet
