#include "geom/circle.h"

#include <algorithm>

namespace proxdet {

double DistancePointToCircle(const Vec2& p, const Circle& c) {
  return std::max(0.0, Distance(p, c.center) - c.radius);
}

double DistanceCircleToCircle(const Circle& a, const Circle& b) {
  return std::max(0.0, Distance(a.center, b.center) - a.radius - b.radius);
}

double DistanceSegmentToCircle(const Segment& s, const Circle& c) {
  return std::max(0.0, DistancePointToSegment(c.center, s) - c.radius);
}

}  // namespace proxdet
