#ifndef PROXDET_GEOM_BBOX_H_
#define PROXDET_GEOM_BBOX_H_

#include <algorithm>
#include <cmath>

#include "geom/vec2.h"

namespace proxdet {

/// Axis-aligned bounding box; the spatial extent of a dataset and the frame
/// for grid indexes (HMM states, R2-D2 reference lookup).
struct BBox {
  Vec2 lo;
  Vec2 hi;

  double Width() const { return hi.x - lo.x; }
  double Height() const { return hi.y - lo.y; }
  Vec2 Center() const { return (lo + hi) * 0.5; }

  bool Contains(const Vec2& p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }

  /// Clamps p into the box.
  Vec2 Clamp(const Vec2& p) const {
    return {std::clamp(p.x, lo.x, hi.x), std::clamp(p.y, lo.y, hi.y)};
  }

  /// Grows the box to include p.
  void Extend(const Vec2& p) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
  }

  /// Grows the box in every direction by `margin`.
  void Inflate(double margin) {
    lo.x -= margin;
    lo.y -= margin;
    hi.x += margin;
    hi.y += margin;
  }

  /// Minimum distance from p to the box (0 when inside). A sound lower
  /// bound on the distance from p to anything the box contains.
  double DistanceToPoint(const Vec2& p) const {
    const double dx = std::max({lo.x - p.x, p.x - hi.x, 0.0});
    const double dy = std::max({lo.y - p.y, p.y - hi.y, 0.0});
    return std::sqrt(dx * dx + dy * dy);
  }

  /// Minimum distance between two boxes (0 on overlap). A sound lower
  /// bound on the distance between any two shapes the boxes contain.
  double DistanceToBox(const BBox& o) const {
    const double dx = std::max({lo.x - o.hi.x, o.lo.x - hi.x, 0.0});
    const double dy = std::max({lo.y - o.hi.y, o.lo.y - hi.y, 0.0});
    return std::sqrt(dx * dx + dy * dy);
  }
};

}  // namespace proxdet

#endif  // PROXDET_GEOM_BBOX_H_
