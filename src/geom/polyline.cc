#include "geom/polyline.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace proxdet {

Polyline::Polyline(std::vector<Vec2> points) : points_(std::move(points)) {}

double Polyline::Length() const {
  double acc = 0.0;
  for (size_t i = 0; i + 1 < points_.size(); ++i) {
    acc += Distance(points_[i], points_[i + 1]);
  }
  return acc;
}

double Polyline::DistanceToPoint(const Vec2& p) const {
  return std::sqrt(SquaredDistanceToPoint(p));
}

double Polyline::SquaredDistanceToPoint(const Vec2& p) const {
  if (points_.empty()) return std::numeric_limits<double>::infinity();
  if (points_.size() == 1) return SquaredDistance(p, points_[0]);
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i + 1 < points_.size(); ++i) {
    best = std::min(best, SquaredDistancePointToSegment(p, segment(i)));
  }
  return best;
}

double Polyline::DistanceToPolyline(const Polyline& other) const {
  if (points_.empty() || other.points_.empty()) {
    return std::numeric_limits<double>::infinity();
  }
  if (points_.size() == 1) return other.DistanceToPoint(points_[0]);
  if (other.points_.size() == 1) return DistanceToPoint(other.points_[0]);
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i + 1 < points_.size(); ++i) {
    const Segment s1 = segment(i);
    for (size_t j = 0; j + 1 < other.points_.size(); ++j) {
      best = std::min(best,
                      SquaredDistanceSegmentToSegment(s1, other.segment(j)));
      if (best == 0.0) return 0.0;
    }
  }
  return std::sqrt(best);
}

Vec2 Polyline::PointAtArcLength(double s) const {
  if (points_.empty()) return Vec2();
  if (s <= 0.0 || points_.size() == 1) return points_.front();
  for (size_t i = 0; i + 1 < points_.size(); ++i) {
    const double seg_len = Distance(points_[i], points_[i + 1]);
    if (s <= seg_len) {
      const double t = seg_len > 0.0 ? s / seg_len : 0.0;
      return points_[i] + (points_[i + 1] - points_[i]) * t;
    }
    s -= seg_len;
  }
  return points_.back();
}

}  // namespace proxdet
