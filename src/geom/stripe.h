#ifndef PROXDET_GEOM_STRIPE_H_
#define PROXDET_GEOM_STRIPE_H_

#include <vector>

#include "geom/bbox.h"
#include "geom/circle.h"
#include "geom/polyline.h"
#include "geom/simd/simd.h"
#include "geom/vec2.h"

namespace proxdet {

/// Fixed-radius stripe (Def. 4): the set of points within `radius` of a
/// polyline of predicted locations. This is the paper's predictive safe
/// region. Containment is *time-independent* — a user anywhere along the
/// buffered path is safe regardless of speed (Sec. V-A).
class Stripe {
 public:
  Stripe() = default;
  Stripe(Polyline path, double radius);

  const Polyline& path() const { return path_; }
  double radius() const { return radius_; }

  /// Cached axis-aligned bounds: the path box inflated by radius_ plus the
  /// reject margin. Contains the whole stripe, so box distances derived
  /// from it are sound lower bounds. Only meaningful when has_bounds().
  const BBox& bounds() const { return reject_box_; }
  bool has_bounds() const { return has_reject_box_; }

  /// SoA view of the path's segments, precomputed at construction (the
  /// batched kernels read these instead of re-deriving b - a per query).
  /// A single-point path is cached as one degenerate segment, which the
  /// point-distance kernels resolve bitwise like the scalar special case;
  /// callers doing segment-segment work must branch on path().size() == 1
  /// exactly like Polyline::DistanceToPolyline does.
  simd::SegmentSoA segments_soa() const {
    const double* b = soa_.data();
    const size_t s = soa_segs_;
    return simd::SegmentSoA{b,         b + s,     b + 2 * s, b + 3 * s,
                            b + 4 * s, b + 5 * s, b + 6 * s, s};
  }
  /// The path's anchor points split into coordinate arrays (for batched
  /// Eq. (8) scans). anchor_count() == path().size().
  const double* anchor_xs() const { return soa_.data() + 7 * soa_segs_; }
  const double* anchor_ys() const {
    return soa_.data() + 7 * soa_segs_ + path_.size();
  }
  size_t anchor_count() const { return path_.size(); }

  /// Closed containment: boundary points are inside the safe region.
  bool Contains(const Vec2& p) const;

  /// Minimum distance from p to the stripe (0 when inside).
  double DistanceToPoint(const Vec2& p) const;

  /// Exact minimum distance between two stripes: the polyline-polyline
  /// distance minus both radii, clamped at 0. Used for the sound
  /// region-pair safety check.
  double DistanceToStripe(const Stripe& other) const;

  /// The paper's Eq. (8) approximation of stripe-stripe distance: the
  /// minimum over each stripe's *anchor points* of the point-to-other-stripe
  /// distance. Never smaller than the exact distance minus 0 (it is an upper
  /// bound on the exact distance); the cost model uses it, the safety check
  /// does not.
  double ApproxDistanceToStripeEq8(const Stripe& other) const;

  /// Minimum distance from a disk to the stripe (0 when intersecting).
  double DistanceToCircle(const Circle& c) const;

  /// Area of the buffered polyline, counting overlaps once is NOT attempted:
  /// this is the simple per-capsule sum used only for diagnostics.
  double CapsuleAreaUpperBound() const;

  /// Exact (bitwise) structural equality on path and radius (the reject box
  /// and SoA cache are derived from them); the wire codec's round-trip
  /// guarantee is stated in terms of it.
  friend bool operator==(const Stripe& a, const Stripe& b) {
    return a.radius_ == b.radius_ && a.path_ == b.path_;
  }

 private:
  Polyline path_;
  double radius_ = 0.0;
  // Bounding box of the path inflated by radius_ plus a margin that safely
  // dominates the containment tolerance; Contains() rejects points outside
  // it without scanning a single segment. Invalid when the path is empty.
  BBox reject_box_;
  bool has_reject_box_ = false;
  // Segment SoA ([ax][ay][bx][by][dx][dy][len2], soa_segs_ each) followed by
  // the anchor coordinate arrays ([px][py], path size each). One flat
  // buffer, filled once in the constructor.
  std::vector<double> soa_;
  size_t soa_segs_ = 0;
};

}  // namespace proxdet

#endif  // PROXDET_GEOM_STRIPE_H_
