#include "geom/polygon.h"

#include <algorithm>
#include <cmath>

namespace proxdet {

ConvexPolygon::ConvexPolygon(std::vector<Vec2> vertices)
    : vertices_(std::move(vertices)) {
  if (!vertices_.empty()) {
    bounds_.lo = bounds_.hi = vertices_.front();
    for (const Vec2& v : vertices_) bounds_.Extend(v);
  }
}

ConvexPolygon ConvexPolygon::Square(const Vec2& center, double half) {
  return ConvexPolygon({{center.x - half, center.y - half},
                        {center.x + half, center.y - half},
                        {center.x + half, center.y + half},
                        {center.x - half, center.y + half}});
}

ConvexPolygon ConvexPolygon::ClippedBy(const HalfPlane& hp) const {
  std::vector<Vec2> out;
  const size_t n = vertices_.size();
  if (n == 0) return ConvexPolygon();
  for (size_t i = 0; i < n; ++i) {
    const Vec2& cur = vertices_[i];
    const Vec2& nxt = vertices_[(i + 1) % n];
    const double dc = (cur - hp.point).Dot(hp.normal);
    const double dn = (nxt - hp.point).Dot(hp.normal);
    if (dc <= 0.0) {
      out.push_back(cur);
      if (dn > 0.0) {
        const double t = dc / (dc - dn);
        out.push_back(cur + (nxt - cur) * t);
      }
    } else if (dn <= 0.0) {
      const double t = dc / (dc - dn);
      out.push_back(cur + (nxt - cur) * t);
    }
  }
  return ConvexPolygon(std::move(out));
}

bool ConvexPolygon::Contains(const Vec2& p) const {
  const size_t n = vertices_.size();
  if (n < 3) return false;
  for (size_t i = 0; i < n; ++i) {
    const Vec2& a = vertices_[i];
    const Vec2& b = vertices_[(i + 1) % n];
    if ((b - a).Cross(p - a) < -1e-9) return false;  // Right of a CCW edge.
  }
  return true;
}

double ConvexPolygon::DistanceToPoint(const Vec2& p) const {
  if (vertices_.empty()) return 0.0;
  if (Contains(p)) return 0.0;
  double best = Distance(p, vertices_[0]);
  const size_t n = vertices_.size();
  for (size_t i = 0; i < n; ++i) {
    const Segment edge{vertices_[i], vertices_[(i + 1) % n]};
    best = std::min(best, DistancePointToSegment(p, edge));
  }
  return best;
}

double ConvexPolygon::DistanceToPolygon(const ConvexPolygon& other) const {
  if (vertices_.empty() || other.vertices_.empty()) return 0.0;
  // Overlap check: any vertex containment covers the convex-convex overlap
  // case together with the edge-pair scan below (edge crossings give 0).
  if (Contains(other.vertices_[0]) || other.Contains(vertices_[0])) return 0.0;
  double best = Distance(vertices_[0], other.vertices_[0]);
  const size_t n = vertices_.size();
  const size_t m = other.vertices_.size();
  for (size_t i = 0; i < n; ++i) {
    const Segment e1{vertices_[i], vertices_[(i + 1) % n]};
    for (size_t j = 0; j < m; ++j) {
      const Segment e2{other.vertices_[j], other.vertices_[(j + 1) % m]};
      best = std::min(best, DistanceSegmentToSegment(e1, e2));
      if (best == 0.0) return 0.0;
    }
  }
  return best;
}

double ConvexPolygon::Area() const {
  const size_t n = vertices_.size();
  if (n < 3) return 0.0;
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    acc += vertices_[i].Cross(vertices_[(i + 1) % n]);
  }
  return 0.5 * std::fabs(acc);
}

}  // namespace proxdet
