#ifndef PROXDET_GEOM_SEGMENT_H_
#define PROXDET_GEOM_SEGMENT_H_

#include "geom/vec2.h"

namespace proxdet {

/// Closed line segment between two endpoints.
struct Segment {
  Vec2 a;
  Vec2 b;

  double Length() const { return Distance(a, b); }

  /// Point at parameter t in [0, 1] along the segment.
  Vec2 Lerp(double t) const { return a + (b - a) * t; }
};

/// Closest point on the segment to p.
Vec2 ClosestPointOnSegment(const Segment& s, const Vec2& p);

/// Minimum Euclidean distance from p to the segment. This is the
/// d(o, \overline{p_i p_{i+1}}) primitive of the paper's Eqs. (7)-(8).
double DistancePointToSegment(const Vec2& p, const Segment& s);

/// Squared minimum distance from p to the segment. The polyline scans
/// minimize this and take one sqrt at the end; because IEEE sqrt is
/// correctly rounded (hence monotone), sqrt(min d^2) == min sqrt(d^2)
/// bit-for-bit, so the two formulations are interchangeable.
double SquaredDistancePointToSegment(const Vec2& p, const Segment& s);

/// Minimum Euclidean distance between two segments (0 if they intersect).
double DistanceSegmentToSegment(const Segment& s1, const Segment& s2);

/// Squared minimum distance between two segments (0 if they intersect).
double SquaredDistanceSegmentToSegment(const Segment& s1, const Segment& s2);

/// Whether the two segments intersect (including touching endpoints).
bool SegmentsIntersect(const Segment& s1, const Segment& s2);

}  // namespace proxdet

#endif  // PROXDET_GEOM_SEGMENT_H_
