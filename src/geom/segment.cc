#include "geom/segment.h"

#include <algorithm>
#include <cmath>

namespace proxdet {

Vec2 ClosestPointOnSegment(const Segment& s, const Vec2& p) {
  const Vec2 d = s.b - s.a;
  const double len2 = d.SquaredNorm();
  if (len2 <= 0.0) return s.a;  // Degenerate segment.
  const double t = std::clamp((p - s.a).Dot(d) / len2, 0.0, 1.0);
  return s.a + d * t;
}

double DistancePointToSegment(const Vec2& p, const Segment& s) {
  return std::sqrt(SquaredDistancePointToSegment(p, s));
}

double SquaredDistancePointToSegment(const Vec2& p, const Segment& s) {
  return SquaredDistance(p, ClosestPointOnSegment(s, p));
}

namespace {

// Sign of the orientation of (a, b, c): +1 counterclockwise, -1 clockwise,
// 0 collinear (with a small tolerance).
int Orientation(const Vec2& a, const Vec2& b, const Vec2& c) {
  const double cross = (b - a).Cross(c - a);
  const double eps = 1e-12;
  if (cross > eps) return 1;
  if (cross < -eps) return -1;
  return 0;
}

bool OnSegment(const Vec2& p, const Segment& s) {
  return std::min(s.a.x, s.b.x) - 1e-12 <= p.x &&
         p.x <= std::max(s.a.x, s.b.x) + 1e-12 &&
         std::min(s.a.y, s.b.y) - 1e-12 <= p.y &&
         p.y <= std::max(s.a.y, s.b.y) + 1e-12;
}

}  // namespace

bool SegmentsIntersect(const Segment& s1, const Segment& s2) {
  const int o1 = Orientation(s1.a, s1.b, s2.a);
  const int o2 = Orientation(s1.a, s1.b, s2.b);
  const int o3 = Orientation(s2.a, s2.b, s1.a);
  const int o4 = Orientation(s2.a, s2.b, s1.b);
  if (o1 != o2 && o3 != o4) return true;
  if (o1 == 0 && OnSegment(s2.a, s1)) return true;
  if (o2 == 0 && OnSegment(s2.b, s1)) return true;
  if (o3 == 0 && OnSegment(s1.a, s2)) return true;
  if (o4 == 0 && OnSegment(s1.b, s2)) return true;
  return false;
}

double DistanceSegmentToSegment(const Segment& s1, const Segment& s2) {
  return std::sqrt(SquaredDistanceSegmentToSegment(s1, s2));
}

double SquaredDistanceSegmentToSegment(const Segment& s1, const Segment& s2) {
  if (SegmentsIntersect(s1, s2)) return 0.0;
  // Disjoint segments: the minimum is realized at an endpoint of one of them.
  const double d1 = SquaredDistancePointToSegment(s1.a, s2);
  const double d2 = SquaredDistancePointToSegment(s1.b, s2);
  const double d3 = SquaredDistancePointToSegment(s2.a, s1);
  const double d4 = SquaredDistancePointToSegment(s2.b, s1);
  return std::min(std::min(d1, d2), std::min(d3, d4));
}

}  // namespace proxdet
