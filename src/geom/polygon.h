#ifndef PROXDET_GEOM_POLYGON_H_
#define PROXDET_GEOM_POLYGON_H_

#include <vector>

#include "geom/bbox.h"
#include "geom/segment.h"
#include "geom/vec2.h"

namespace proxdet {

/// Half-plane {p : (p - point) . normal <= offset} described by a boundary
/// line through `point` with outward `normal`. Points satisfying
/// (p - point) . normal <= 0 are kept.
struct HalfPlane {
  Vec2 point;   // A point on the boundary line.
  Vec2 normal;  // Outward normal; the kept side is the non-positive side.

  bool Keeps(const Vec2& p) const { return (p - point).Dot(normal) <= 1e-9; }
};

/// Convex polygon with counterclockwise vertices. This is the static safe
/// region of Buddy Tracking [3]: the intersection of one half-plane per
/// nearby friend, clipped against a bounding square.
class ConvexPolygon {
 public:
  ConvexPolygon() = default;
  explicit ConvexPolygon(std::vector<Vec2> vertices);

  /// Axis-aligned square centered at `center` with half-extent `half`.
  static ConvexPolygon Square(const Vec2& center, double half);

  /// Clips this polygon by a half-plane (Sutherland–Hodgman step). The
  /// result may be empty when the polygon lies fully on the discarded side.
  ConvexPolygon ClippedBy(const HalfPlane& hp) const;

  bool empty() const { return vertices_.size() < 3; }
  const std::vector<Vec2>& vertices() const { return vertices_; }

  /// Cached axis-aligned bounds of the vertex set (exact: a convex polygon
  /// is contained in its vertices' box). Only meaningful when !empty().
  const BBox& bounds() const { return bounds_; }

  /// Closed containment test (boundary counts as inside).
  bool Contains(const Vec2& p) const;

  /// Minimum distance from p to the polygon (0 when inside).
  double DistanceToPoint(const Vec2& p) const;

  /// Minimum distance between the boundaries/interiors of two polygons
  /// (0 when they overlap).
  double DistanceToPolygon(const ConvexPolygon& other) const;

  double Area() const;

  /// Exact (bitwise) structural equality on the vertex list (the cached
  /// bounds are derived from it); the wire codec's round-trip guarantee is
  /// stated in terms of it.
  friend bool operator==(const ConvexPolygon& a, const ConvexPolygon& b) {
    return a.vertices_ == b.vertices_;
  }

 private:
  std::vector<Vec2> vertices_;
  BBox bounds_;  // Cached in the constructor; lo/hi both (0,0) when empty.
};

}  // namespace proxdet

#endif  // PROXDET_GEOM_POLYGON_H_
