#ifndef PROXDET_GEOM_CIRCLE_H_
#define PROXDET_GEOM_CIRCLE_H_

#include "geom/segment.h"
#include "geom/vec2.h"

namespace proxdet {

/// Closed disk. Used for initialization safe regions (Sec. V-C), the
/// FMD/CMD mobile regions, and match regions (Def. 3).
struct Circle {
  Vec2 center;
  double radius = 0.0;

  /// Closed containment: boundary points are inside.
  bool Contains(const Vec2& p) const {
    return SquaredDistance(center, p) <= radius * radius;
  }

  /// Strict containment: boundary points are outside. The match region uses
  /// the strict form so that two members always satisfy d(u,w) < r (Def. 1
  /// alerts on strict inequality).
  bool ContainsStrict(const Vec2& p) const {
    return SquaredDistance(center, p) < radius * radius;
  }

  /// Exact (bitwise) structural equality; the wire codec's round-trip
  /// guarantee is stated in terms of it.
  friend bool operator==(const Circle& a, const Circle& b) {
    return a.center == b.center && a.radius == b.radius;
  }
};

/// Minimum distance from p to the disk (0 when inside).
double DistancePointToCircle(const Vec2& p, const Circle& c);

/// Minimum distance between two disks (0 when overlapping).
double DistanceCircleToCircle(const Circle& a, const Circle& b);

/// Minimum distance between a segment and a disk (0 when intersecting).
double DistanceSegmentToCircle(const Segment& s, const Circle& c);

}  // namespace proxdet

#endif  // PROXDET_GEOM_CIRCLE_H_
