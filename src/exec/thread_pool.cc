#include "exec/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>

#include "common/timer.h"
#include "obs/metrics.h"

namespace proxdet {

namespace {

/// Pool throughput and scheduling-delay metrics. All wall-clock: task
/// counts depend on the pool size (helpers fan out per loop), queue wait
/// and busy time on machine scheduling. None participate in the
/// determinism digest.
struct PoolMetrics {
  obs::Counter& tasks_submitted;
  obs::Counter& tasks_executed;
  obs::QuantileMetric& queue_wait_seconds;

  static const PoolMetrics& Get() {
    static const PoolMetrics m{
        obs::Metrics().GetCounter("exec.tasks_submitted",
                                  obs::Kind::kWallClock),
        obs::Metrics().GetCounter("exec.tasks_executed",
                                  obs::Kind::kWallClock),
        obs::Metrics().GetQuantile("exec.queue_wait_seconds"),
    };
    return m;
  }
};

/// Per-worker busy-time gauge, indexed by the worker's slot in its pool.
/// Workers of successive global pools share names — Reset() zeroes them
/// between runs, so a run report shows that run's accumulation only.
obs::Gauge& WorkerBusyGauge(unsigned worker_index) {
  return obs::Metrics().GetGauge(
      "exec.worker." + std::to_string(worker_index) + ".busy_seconds");
}

}  // namespace

ThreadPool::ThreadPool(unsigned threads) : threads_(threads == 0 ? 1 : threads) {
  workers_.reserve(threads_ - 1);
  for (unsigned i = 0; i + 1 < threads_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  PoolMetrics::Get().tasks_submitted.Inc();
  // Wrap to stamp the enqueue time; the wait is recorded when a worker
  // picks the task up. One extra clock read per task — tasks are coarse
  // (one helper per loop), so this never shows up in profiles.
  WallTimer queued;
  auto timed = [queued, task = std::move(task)] {
    PoolMetrics::Get().queue_wait_seconds.Record(queued.ElapsedSeconds());
    task();
  };
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(timed));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop(unsigned worker_index) {
  obs::Gauge& busy = WorkerBusyGauge(worker_index);
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    const WallTimer task_timer;
    task();
    busy.Add(task_timer.ElapsedSeconds());
    PoolMetrics::Get().tasks_executed.Inc();
  }
}

unsigned ThreadPool::DefaultThreadCount() {
  if (const char* env = std::getenv("PROXDET_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

namespace {

std::unique_ptr<ThreadPool>& GlobalPoolSlot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

std::mutex& GlobalPoolMutex() {
  static std::mutex m;
  return m;
}

}  // namespace

ThreadPool& ThreadPool::Global() {
  std::lock_guard<std::mutex> lock(GlobalPoolMutex());
  std::unique_ptr<ThreadPool>& slot = GlobalPoolSlot();
  if (!slot) slot = std::make_unique<ThreadPool>(DefaultThreadCount());
  return *slot;
}

void ThreadPool::SetGlobalThreads(unsigned threads) {
  std::lock_guard<std::mutex> lock(GlobalPoolMutex());
  std::unique_ptr<ThreadPool>& slot = GlobalPoolSlot();
  slot.reset();  // Joins the old workers before the new pool spins up.
  slot = std::make_unique<ThreadPool>(threads);
}

namespace {

/// Shared loop state. Helpers submitted to the pool may outlive the
/// ParallelFor call (they run, find no index left, and exit), so the state
/// is shared_ptr-owned; `fn` is only invoked for claimed indices, which
/// the caller is guaranteed to still be waiting on.
struct LoopState {
  explicit LoopState(size_t total, std::function<void(size_t)> f)
      : n(total), fn(std::move(f)) {}

  const size_t n;
  const std::function<void(size_t)> fn;
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  std::atomic<bool> failed{false};
  std::mutex mutex;
  std::condition_variable cv;
  std::exception_ptr error;

  void RunIterations() {
    for (size_t i; (i = next.fetch_add(1, std::memory_order_relaxed)) < n;) {
      if (!failed.load(std::memory_order_relaxed)) {
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(mutex);
          if (!error) error = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
        }
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        std::lock_guard<std::mutex> lock(mutex);
        cv.notify_all();
      }
    }
  }
};

}  // namespace

void ParallelFor(ThreadPool& pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (pool.thread_count() <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto state = std::make_shared<LoopState>(n, fn);
  const size_t helpers =
      std::min<size_t>(pool.thread_count() - 1, n - 1);
  for (size_t h = 0; h < helpers; ++h) {
    pool.Submit([state] { state->RunIterations(); });
  }
  // The caller drains the iteration space itself: even if every helper is
  // stuck behind other queued work (nested ParallelFor under saturation),
  // progress is guaranteed and the wait below terminates.
  state->RunIterations();
  std::unique_lock<std::mutex> lock(state->mutex);
  state->cv.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) == state->n;
  });
  if (state->error) std::rethrow_exception(state->error);
}

void ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  ParallelFor(ThreadPool::Global(), n, fn);
}

void ParallelForChunked(ThreadPool& pool, size_t n, size_t grain,
                        const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  // No single-call fast path: the chunk partition must be the same for
  // every thread count so slot-per-chunk callers (delta lists indexed by
  // lo / grain) see identical layouts. ParallelFor already degenerates to
  // a plain loop on a 1-thread pool.
  const size_t chunks = (n + grain - 1) / grain;
  ParallelFor(pool, chunks, [n, grain, &fn](size_t c) {
    const size_t lo = c * grain;
    fn(lo, std::min(lo + grain, n));
  });
}

void ParallelForChunked(size_t n, size_t grain,
                        const std::function<void(size_t, size_t)>& fn) {
  ParallelForChunked(ThreadPool::Global(), n, grain, fn);
}

}  // namespace proxdet
