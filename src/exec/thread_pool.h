#ifndef PROXDET_EXEC_THREAD_POOL_H_
#define PROXDET_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace proxdet {

/// Fixed-size thread pool behind every parallel path in the library
/// (sweep fan-out, Kalman grid tuning, sigma calibration, ground-truth
/// scans). Deliberately simple: one shared FIFO queue, no work stealing —
/// the units we fan out (bench cells, grid cells, calibration queries,
/// pair chunks) are coarse enough that queue contention is irrelevant.
///
/// Determinism contract: the pool only *schedules*; every caller merges
/// results in slot order, so outputs are byte-identical for any thread
/// count (see ParallelFor below). A pool of size 1 spawns no workers at
/// all and ParallelFor degenerates to a plain loop.
class ThreadPool {
 public:
  /// `threads` is the target parallelism (including the calling thread
  /// when it participates via ParallelFor); `threads - 1` workers are
  /// spawned. 0 is treated as 1.
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Configured parallelism (>= 1).
  unsigned thread_count() const { return threads_; }

  /// Enqueues a task. Tasks must not block waiting for other queued tasks
  /// (ParallelFor's caller-participation design never needs to).
  void Submit(std::function<void()> task);

  /// Parallelism from the PROXDET_THREADS environment variable, falling
  /// back to std::thread::hardware_concurrency().
  static unsigned DefaultThreadCount();

  /// The process-wide pool, lazily created with DefaultThreadCount().
  static ThreadPool& Global();

  /// Rebuilds the global pool with `threads` workers. Test/tuning hook —
  /// must not be called while parallel work is in flight.
  static void SetGlobalThreads(unsigned threads);

 private:
  void WorkerLoop(unsigned worker_index);

  unsigned threads_;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Runs fn(0..n-1) across `pool`, the calling thread included. Indices are
/// claimed dynamically, so execution *order* varies between runs — callers
/// must write results into index-addressed slots (as ParallelMap does) and
/// merge in index order; under that discipline results are independent of
/// the thread count. Safe to call from inside a pool task (nested use):
/// the caller drains its own iteration space instead of blocking on the
/// queue, so saturation cannot deadlock. The first exception thrown by fn
/// is rethrown on the calling thread after the loop quiesces; remaining
/// unclaimed iterations are skipped.
void ParallelFor(ThreadPool& pool, size_t n,
                 const std::function<void(size_t)>& fn);

/// ParallelFor over the global pool.
void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

/// Chunked ParallelFor: partitions [0, n) into contiguous ranges of at most
/// `grain` indices and runs fn(begin, end) for each range. The per-iteration
/// std::function dispatch of plain ParallelFor is too heavy for fine-grained
/// work (a containment test per user, a distance per edge); here the lambda
/// runs a tight inner loop over its range instead. Chunk boundaries are a
/// pure function of (n, grain), so results written into index-addressed
/// slots stay independent of the thread count. grain == 0 is treated as 1.
void ParallelForChunked(ThreadPool& pool, size_t n, size_t grain,
                        const std::function<void(size_t, size_t)>& fn);

/// ParallelForChunked over the global pool.
void ParallelForChunked(size_t n, size_t grain,
                        const std::function<void(size_t, size_t)>& fn);

/// Slot-ordered parallel map: out[i] = fn(i). The deterministic-merge
/// pattern most parallel paths in the library reduce to.
template <typename T>
std::vector<T> ParallelMap(ThreadPool& pool, size_t n,
                           const std::function<T(size_t)>& fn) {
  std::vector<T> out(n);
  ParallelFor(pool, n, [&](size_t i) { out[i] = fn(i); });
  return out;
}

template <typename T>
std::vector<T> ParallelMap(size_t n, const std::function<T(size_t)>& fn) {
  return ParallelMap<T>(ThreadPool::Global(), n, fn);
}

}  // namespace proxdet

#endif  // PROXDET_EXEC_THREAD_POOL_H_
