#ifndef PROXDET_BENCH_SUPPORT_EXPERIMENT_H_
#define PROXDET_BENCH_SUPPORT_EXPERIMENT_H_

#include <string>
#include <vector>

#include "common/table.h"
#include "core/simulation.h"

namespace proxdet {

/// Laptop-scaled analogue of the paper's Table II defaults (N=10K, F=30,
/// S=900, V=8, r=6km). The sweep *shapes* of Figures 8-13 are preserved;
/// absolute message counts scale with N and S. See EXPERIMENTS.md.
WorkloadConfig DefaultExperimentConfig(DatasetKind dataset);

/// Runs every method on the workload and returns the per-method results in
/// method order. Aborts (logs) if any method's alert stream deviates from
/// ground truth — benchmark numbers from an incorrect detector are void.
std::vector<RunResult> RunSuite(const std::vector<Method>& methods,
                                const Workload& workload);

/// Renders one figure series: rows = sweep values, columns = methods,
/// cells = total communication I/O.
Table MakeFigureTable(const std::string& title, const std::string& x_label,
                      const std::vector<std::string>& x_values,
                      const std::vector<Method>& methods,
                      const std::vector<std::vector<RunResult>>& results);

}  // namespace proxdet

#endif  // PROXDET_BENCH_SUPPORT_EXPERIMENT_H_
