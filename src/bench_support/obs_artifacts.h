#ifndef PROXDET_BENCH_SUPPORT_OBS_ARTIFACTS_H_
#define PROXDET_BENCH_SUPPORT_OBS_ARTIFACTS_H_

#include <string>

#include "core/comm_stats.h"
#include "core/spatial_index.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "obs/report.h"

namespace proxdet {

/// Builds a RunReport for one finished run: the current global metrics
/// snapshot plus the run's CommStats as a report section (deterministic
/// message/byte fields under "comm_stats"; wall-clock server_seconds
/// segregated under "timing"). Pair with obs::Metrics().Reset() before the
/// run so the snapshot covers exactly this run.
obs::RunReport MakeRunReport(const std::string& run_name,
                             const CommStats& stats);

/// Adds the sharded serving plane's wire breakdown to a RunReport: one
/// "shard<i>" section per partition (users, frames/bytes by direction) plus
/// a "batching" section with the coalescing and compression counters.
void AddShardNetSections(obs::RunReport* report, const net::NetRunStats& net);

/// Adds a detector's spatial-index work counters to a RunReport as an
/// "index" section (upserts/moves/rebuilds, queries, cells probed,
/// candidates, match-classifier verdicts). All values are deterministic
/// per the SpatialIndexStats contract.
void AddIndexSection(obs::RunReport* report, const SpatialIndexStats& stats);

/// Checks that the engine.index.* registry counters reconcile with a
/// detector's index_stats() to the unit (both count the same serial-commit
/// and serial-fold events). Trivially true when the snapshot carries no
/// counters (observability compiled out). On failure returns false and
/// appends a description per mismatch to *error.
bool ReconcileIndexStats(const obs::MetricsSnapshot& snapshot,
                         const SpatialIndexStats& stats, std::string* error);

/// Checks that the registry's engine/net counters reconcile with CommStats
/// to the unit: every message-count field matches its engine.* counter, the
/// byte totals match net.bytes_up/down/xshard, and — when per-shard
/// counters are registered — the net.shard<i>.bytes_* sums equal the global
/// direction totals. Trivially true when the snapshot carries no counters
/// (observability compiled out). On failure returns false and appends a
/// description per mismatch to *error.
bool ReconcileWithCommStats(const obs::MetricsSnapshot& snapshot,
                            const CommStats& stats, std::string* error);

/// Tail summary of one registry quantile sketch — the single latency
/// digest shared by the benches: micro_socket reads "net.socket.rtt_s"
/// (wall clock) and micro_latency reads "net.latency.virtual_s" /
/// "net.latency.wall_s" through the same helper, so every reported
/// percentile comes from the same obs sketch rather than per-bench
/// ad-hoc math.
struct LatencySummary {
  uint64_t samples = 0;
  double p50_s = 0.0;
  double p99_s = 0.0;
  double p999_s = 0.0;
};
LatencySummary SummarizeLatency(const std::string& name, obs::Kind kind);

/// Writes the global tracer's buffered spans as Chrome trace JSON, the
/// path resolved by the PROXDET_BENCH_JSON convention (see BenchJsonPath).
/// Returns the path written, or "" when emission is disabled or the
/// tracer holds no spans.
std::string WriteTraceArtifact(const std::string& filename);

/// Writes `report` as JSON under the PROXDET_BENCH_JSON convention.
/// Returns the path written, or "" when disabled.
std::string WriteReportArtifact(const obs::RunReport& report,
                                const std::string& filename);

}  // namespace proxdet

#endif  // PROXDET_BENCH_SUPPORT_OBS_ARTIFACTS_H_
