#include "bench_support/experiment.h"

#include <cstdio>

#include "exec/thread_pool.h"

namespace proxdet {

WorkloadConfig DefaultExperimentConfig(DatasetKind dataset) {
  WorkloadConfig config;
  config.dataset = dataset;
  config.num_users = 400;       // Paper: 10K (laptop-scaled).
  config.epochs = 150;          // Paper: 900 (laptop-scaled).
  config.speed_steps = 8;       // Paper default V.
  config.avg_friends = 30.0;    // Paper default F.
  config.alert_radius_m = 6000.0;  // Paper default r.
  config.seed = 20180416;       // ICDE'18 vintage.
  config.training_users = 60;
  config.training_epochs = 200;
  return config;
}

std::vector<RunResult> RunSuite(const std::vector<Method>& methods,
                                const Workload& workload) {
  // Method cells are independent (each builds its own detector and
  // predictor from the const workload), so they fan out across the pool;
  // results land in method order regardless of the thread count.
  std::vector<RunResult> results = ParallelMap<RunResult>(
      methods.size(),
      [&](size_t i) { return RunMethod(methods[i], workload); });
  for (size_t i = 0; i < methods.size(); ++i) {
    if (!results[i].alerts_exact) {
      std::fprintf(stderr,
                   "FATAL: %s deviated from the ground-truth alert stream on "
                   "%s — benchmark numbers would be void.\n",
                   MethodName(methods[i]).c_str(),
                   DatasetName(workload.config.dataset).c_str());
      std::abort();
    }
  }
  return results;
}

Table MakeFigureTable(const std::string& title, const std::string& x_label,
                      const std::vector<std::string>& x_values,
                      const std::vector<Method>& methods,
                      const std::vector<std::vector<RunResult>>& results) {
  Table table(title);
  std::vector<std::string> header{x_label};
  for (const Method m : methods) header.push_back(MethodName(m));
  table.SetHeader(std::move(header));
  for (size_t i = 0; i < x_values.size(); ++i) {
    std::vector<std::string> row{x_values[i]};
    for (const RunResult& r : results[i]) {
      row.push_back(std::to_string(r.stats.TotalMessages()));
    }
    table.AddRow(std::move(row));
  }
  return table;
}

}  // namespace proxdet
