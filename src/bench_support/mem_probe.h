#ifndef PROXDET_BENCH_SUPPORT_MEM_PROBE_H_
#define PROXDET_BENCH_SUPPORT_MEM_PROBE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace proxdet {

/// Shared live-heap accounting behind the PROXDET_INSTALL_ALLOC_PROBE
/// operator-new override below. The counters live in the bench_support
/// library so every bench binary reads the same definitions; the override
/// itself must be stamped into exactly one TU of the *binary* (replacing
/// global operator new from a static library is ODR-fragile), which is
/// what the macro is for.
struct AllocProbe {
  /// Total calls to global operator new since process start.
  static std::atomic<uint64_t> alloc_count;
  /// Bytes currently live (usable size of every outstanding allocation).
  static std::atomic<uint64_t> live_bytes;
  /// High-water mark of live_bytes (monotone CAS max).
  static std::atomic<uint64_t> peak_live_bytes;

  static uint64_t AllocCount() {
    return alloc_count.load(std::memory_order_relaxed);
  }
  static uint64_t LiveBytes() {
    return live_bytes.load(std::memory_order_relaxed);
  }
  static uint64_t PeakLiveBytes() {
    return peak_live_bytes.load(std::memory_order_relaxed);
  }
  /// Restarts the high-water mark from the current live level, so a probe
  /// around a region of interest measures that region's peak, not the
  /// process history's.
  static void ResetPeak() {
    peak_live_bytes.store(live_bytes.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  }

  // Called by the installed operator new/delete; exposed so the macro
  // body stays small. `usable` is malloc_usable_size(p).
  static void OnAlloc(size_t usable) {
    alloc_count.fetch_add(1, std::memory_order_relaxed);
    const uint64_t now =
        live_bytes.fetch_add(usable, std::memory_order_relaxed) + usable;
    uint64_t peak = peak_live_bytes.load(std::memory_order_relaxed);
    while (now > peak && !peak_live_bytes.compare_exchange_weak(
                             peak, now, std::memory_order_relaxed)) {
    }
  }
  static void OnFree(size_t usable) {
    live_bytes.fetch_sub(usable, std::memory_order_relaxed);
  }
};

/// Peak resident set size of this process in bytes (VmHWM from
/// /proc/self/status), or 0 if unavailable. Covers everything the alloc
/// probe cannot see: thread stacks, code, mmap'd arenas.
uint64_t PeakRssBytes();

/// Current resident set size in bytes (VmRSS), or 0 if unavailable.
uint64_t CurrentRssBytes();

/// Returns malloc's usable size for `p` (0 for nullptr). Thin wrapper so
/// the macro below does not need <malloc.h> at its expansion site.
size_t ProbeUsableSize(void* p);

}  // namespace proxdet

/// Expands to the global operator new/delete overrides that feed
/// AllocProbe. Place at namespace scope in exactly ONE translation unit of
/// a bench binary. The counters are always live (worker threads allocate
/// too); callers read deltas around the region of interest and use
/// ResetPeak() + PeakLiveBytes() for high-water measurements.
#define PROXDET_INSTALL_ALLOC_PROBE()                                         \
  void* operator new(std::size_t size) {                                      \
    if (size == 0) size = 1;                                                  \
    void* p = std::malloc(size);                                              \
    if (p == nullptr) throw std::bad_alloc();                                 \
    ::proxdet::AllocProbe::OnAlloc(::proxdet::ProbeUsableSize(p));            \
    return p;                                                                 \
  }                                                                           \
  void* operator new[](std::size_t size) { return ::operator new(size); }     \
  void* operator new(std::size_t size, const std::nothrow_t&) noexcept {      \
    void* p = std::malloc(size == 0 ? 1 : size);                              \
    if (p != nullptr)                                                         \
      ::proxdet::AllocProbe::OnAlloc(::proxdet::ProbeUsableSize(p));          \
    return p;                                                                 \
  }                                                                           \
  void* operator new[](std::size_t size, const std::nothrow_t& t) noexcept {  \
    return ::operator new(size, t);                                           \
  }                                                                           \
  void operator delete(void* p) noexcept {                                    \
    if (p != nullptr)                                                         \
      ::proxdet::AllocProbe::OnFree(::proxdet::ProbeUsableSize(p));           \
    std::free(p);                                                             \
  }                                                                           \
  void operator delete[](void* p) noexcept { ::operator delete(p); }          \
  void operator delete(void* p, std::size_t) noexcept {                       \
    ::operator delete(p);                                                     \
  }                                                                           \
  void operator delete[](void* p, std::size_t) noexcept {                     \
    ::operator delete(p);                                                     \
  }                                                                           \
  void operator delete(void* p, const std::nothrow_t&) noexcept {             \
    ::operator delete(p);                                                     \
  }                                                                           \
  void operator delete[](void* p, const std::nothrow_t&) noexcept {           \
    ::operator delete(p);                                                     \
  }

#endif  // PROXDET_BENCH_SUPPORT_MEM_PROBE_H_
