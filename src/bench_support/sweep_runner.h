#ifndef PROXDET_BENCH_SUPPORT_SWEEP_RUNNER_H_
#define PROXDET_BENCH_SUPPORT_SWEEP_RUNNER_H_

#include <functional>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/simulation.h"

namespace proxdet {

/// One column of a sweep: a labeled, self-contained way to run a workload.
/// `run` executes on pool threads — it must build all of its own state
/// (detector, predictor, Rngs) from the const workload and return a
/// RunResult with `alerts_exact` set honestly.
struct SweepColumn {
  std::string label;
  std::function<RunResult(const Workload&)> run;
};

/// The standard column: RunMethod with the given engine options.
SweepColumn MethodColumn(Method method, RegionDetector::Options options = {});

std::vector<SweepColumn> MethodColumns(const std::vector<Method>& methods);

/// The parallel experiment engine behind every figure bench and ablation.
///
/// A sweep is a grid of independent cells: (point x column), where a point
/// is one workload configuration (a sweep value on a dataset) and a column
/// is one way to run it (usually a detection method). Run() builds the
/// workloads and executes every cell across the global thread pool, then
/// reassembles results indexed [point][column].
///
/// Determinism contract: every cell derives its randomness from the point's
/// config seed (or Rngs created inside the cell), never from shared state,
/// so the result grid — message counters, alert counts, alert streams — is
/// byte-identical for PROXDET_THREADS=1 and =N. Only wall-clock fields
/// (server_seconds, wall_seconds) vary between runs.
///
/// Correctness contract: Run() aborts the process if any cell's alert
/// stream deviated from ground truth, exactly like the historical serial
/// RunSuite — benchmark numbers from an incorrect detector are void.
class SweepRunner {
 public:
  /// `figure` is a short id ("fig9") used for the JSON snapshot name.
  SweepRunner(std::string figure, std::vector<SweepColumn> columns);
  SweepRunner(std::string figure, const std::vector<Method>& methods);

  /// Adds one sweep point. `group` keys one output table (dataset name for
  /// the paper figures), `x_value` labels the row. `customize` (optional)
  /// runs after BuildWorkload on the pool thread that built the point —
  /// it must derive any randomness deterministically (own Rng seed), not
  /// share one across points.
  void AddPoint(std::string group, std::string x_value, WorkloadConfig config,
                std::function<void(Workload*)> customize = nullptr);

  size_t point_count() const { return points_.size(); }
  const std::vector<SweepColumn>& columns() const { return columns_; }

  /// Executes all cells; returns results indexed [point][column]. Invokable
  /// once; subsequent calls return the cached grid.
  const std::vector<std::vector<RunResult>>& Run();

  /// Groups in first-insertion order.
  std::vector<std::string> groups() const;

  /// Figure table for one group: rows = that group's points in insertion
  /// order, columns = column labels, cells = total communication I/O.
  /// Identical layout to the historical MakeFigureTable output.
  Table GroupTable(const std::string& title, const std::string& x_label,
                   const std::string& group) const;

  /// Row indices (into Run()'s grid) of one group, in insertion order.
  std::vector<size_t> GroupRows(const std::string& group) const;

  /// Wall-clock seconds spent inside Run().
  double wall_seconds() const { return wall_seconds_; }

  /// Writes the machine-readable snapshot BENCH_<figure>.json (cell
  /// parameters, per-cell I/O, wall seconds, thread count) next to the
  /// ASCII tables. Honors PROXDET_BENCH_JSON: unset or "1" writes to the
  /// current directory, "0" disables, any other value is the target
  /// directory. Returns the path written, or "" when disabled. Also emits
  /// REPORT_<figure>.json (see WriteRunReport).
  std::string WriteJson() const;

  /// Writes REPORT_<figure>.json: the sweep's aggregate CommStats joined
  /// with the global metrics snapshot (Run() resets the registry before the
  /// first cell, so the snapshot covers exactly this sweep) and the
  /// counter-vs-CommStats reconciliation verdict. Same PROXDET_BENCH_JSON
  /// conventions; returns the path written, or "" when disabled.
  std::string WriteRunReport() const;

 private:
  struct Point {
    std::string group;
    std::string x_value;
    WorkloadConfig config;
    std::function<void(Workload*)> customize;
  };

  std::string figure_;
  std::vector<SweepColumn> columns_;
  std::vector<Point> points_;
  std::vector<std::vector<RunResult>> results_;
  bool ran_ = false;
  double wall_seconds_ = 0.0;
};

}  // namespace proxdet

#endif  // PROXDET_BENCH_SUPPORT_SWEEP_RUNNER_H_
