#include "bench_support/obs_artifacts.h"

#include <cstdio>

#include "bench_support/bench_json.h"
#include "obs/trace.h"

namespace proxdet {

namespace {

uint64_t CounterOr0(const obs::MetricsSnapshot& snapshot,
                    const std::string& name) {
  const auto it = snapshot.counters.find(name);
  return it == snapshot.counters.end() ? 0 : it->second.second;
}

void CheckField(const obs::MetricsSnapshot& snapshot, const std::string& name,
                uint64_t expected, bool* ok, std::string* error) {
  const uint64_t got = CounterOr0(snapshot, name);
  if (got == expected) return;
  *ok = false;
  if (error != nullptr) {
    *error += name + " = " + std::to_string(got) + ", run state says " +
              std::to_string(expected) + "\n";
  }
}

}  // namespace

obs::RunReport MakeRunReport(const std::string& run_name,
                             const CommStats& stats) {
  obs::RunReport report(run_name);
  report.AddCount("comm_stats", "reports", stats.reports);
  report.AddCount("comm_stats", "probes", stats.probes);
  report.AddCount("comm_stats", "alerts", stats.alerts);
  report.AddCount("comm_stats", "region_installs", stats.region_installs);
  report.AddCount("comm_stats", "match_installs", stats.match_installs);
  report.AddCount("comm_stats", "total_messages", stats.TotalMessages());
  report.AddCount("comm_stats", "bytes_up", stats.bytes_up);
  report.AddCount("comm_stats", "bytes_down", stats.bytes_down);
  report.AddCount("comm_stats", "bytes_xshard", stats.bytes_xshard);
  report.AddCount("comm_stats", "batch_saved_bytes", stats.batch_saved_bytes);
  report.AddCount("comm_stats", "total_bytes", stats.TotalBytes());
  report.AddScalar("timing", "server_seconds", stats.server_seconds);
  report.CaptureMetrics(obs::Metrics().Snapshot());
  return report;
}

LatencySummary SummarizeLatency(const std::string& name, obs::Kind kind) {
  const obs::StreamingQuantile sketch =
      obs::Metrics().GetQuantile(name, kind).snapshot();
  LatencySummary summary;
  summary.samples = sketch.count();
  if (summary.samples > 0) {
    summary.p50_s = sketch.Quantile(0.5);
    summary.p99_s = sketch.Quantile(0.99);
    summary.p999_s = sketch.Quantile(0.999);
  }
  return summary;
}

void AddShardNetSections(obs::RunReport* report,
                         const net::NetRunStats& net) {
  for (size_t i = 0; i < net.shards.size(); ++i) {
    const net::ShardNetStats& s = net.shards[i];
    const std::string section = "shard" + std::to_string(i);
    report->AddCount(section, "users", s.users);
    report->AddCount(section, "frames_up", s.frames_up);
    report->AddCount(section, "bytes_up", s.bytes_up);
    report->AddCount(section, "frames_down", s.frames_down);
    report->AddCount(section, "bytes_down", s.bytes_down);
    report->AddCount(section, "frames_xshard", s.frames_xshard);
    report->AddCount(section, "bytes_xshard", s.bytes_xshard);
  }
  report->AddCount("batching", "batch_frames", net.batch_frames);
  report->AddCount("batching", "batch_messages", net.batch_messages);
  report->AddCount("batching", "batch_saved_bytes", net.batch_saved_bytes);
  report->AddCount("batching", "compressed_installs", net.compressed_installs);
  report->AddCount("batching", "compress_skipped", net.compress_skipped);
  report->AddCount("batching", "compress_saved_bytes",
                   net.compress_saved_bytes);
  report->AddCount("batching", "compress_mismatch", net.compress_mismatch);
}

void AddIndexSection(obs::RunReport* report, const SpatialIndexStats& stats) {
  report->AddCount("index", "upserts", stats.upserts);
  report->AddCount("index", "moves", stats.moves);
  report->AddCount("index", "removes", stats.removes);
  report->AddCount("index", "rebuilds", stats.rebuilds);
  report->AddCount("index", "queries", stats.queries);
  report->AddCount("index", "cells_probed", stats.cells_probed);
  report->AddCount("index", "candidates", stats.candidates);
  report->AddCount("index", "match_classified", stats.match_classified);
  report->AddCount("index", "match_exact", stats.match_exact);
}

bool ReconcileIndexStats(const obs::MetricsSnapshot& snapshot,
                         const SpatialIndexStats& stats, std::string* error) {
  if (snapshot.counters.empty()) return true;  // Observability compiled out.
  bool ok = true;
  CheckField(snapshot, "engine.index.upserts", stats.upserts, &ok, error);
  CheckField(snapshot, "engine.index.moves", stats.moves, &ok, error);
  CheckField(snapshot, "engine.index.rebuilds", stats.rebuilds, &ok, error);
  CheckField(snapshot, "engine.index.queries", stats.queries, &ok, error);
  CheckField(snapshot, "engine.index.cells_probed", stats.cells_probed, &ok,
             error);
  CheckField(snapshot, "engine.index.candidates", stats.candidates, &ok,
             error);
  CheckField(snapshot, "engine.index.match_classified", stats.match_classified,
             &ok, error);
  CheckField(snapshot, "engine.index.match_exact", stats.match_exact, &ok,
             error);
  return ok;
}

bool ReconcileWithCommStats(const obs::MetricsSnapshot& snapshot,
                            const CommStats& stats, std::string* error) {
  if (snapshot.counters.empty()) return true;  // Observability compiled out.
  bool ok = true;
  CheckField(snapshot, "engine.reports", stats.reports, &ok, error);
  CheckField(snapshot, "engine.probes", stats.probes, &ok, error);
  CheckField(snapshot, "engine.alerts", stats.alerts, &ok, error);
  CheckField(snapshot, "engine.region_installs", stats.region_installs, &ok,
             error);
  CheckField(snapshot, "engine.match_installs", stats.match_installs, &ok,
             error);
  CheckField(snapshot, "net.bytes_up", stats.bytes_up, &ok, error);
  CheckField(snapshot, "net.bytes_down", stats.bytes_down, &ok, error);
  CheckField(snapshot, "net.bytes_xshard", stats.bytes_xshard, &ok, error);
  // Per-shard direction counters, when present, must sum to the globals —
  // a byte attributed to a shard is the same byte the global counter saw.
  uint64_t shard_up = 0;
  uint64_t shard_down = 0;
  uint64_t shard_xshard = 0;
  bool any_shard = false;
  for (const auto& [name, entry] : snapshot.counters) {
    if (name.rfind("net.shard", 0) != 0) continue;
    any_shard = true;
    if (name.size() >= 9 && name.compare(name.size() - 9, 9, ".bytes_up") == 0) {
      shard_up += entry.second;
    } else if (name.size() >= 11 &&
               name.compare(name.size() - 11, 11, ".bytes_down") == 0) {
      shard_down += entry.second;
    } else if (name.size() >= 13 &&
               name.compare(name.size() - 13, 13, ".bytes_xshard") == 0) {
      shard_xshard += entry.second;
    }
  }
  if (any_shard) {
    CheckField(snapshot, "net.bytes_up", shard_up, &ok, error);
    CheckField(snapshot, "net.bytes_down", shard_down, &ok, error);
    CheckField(snapshot, "net.bytes_xshard", shard_xshard, &ok, error);
  }
  return ok;
}

std::string WriteTraceArtifact(const std::string& filename) {
  obs::Tracer& tracer = obs::Tracer::Global();
  if (tracer.span_count() == 0) return "";
  const std::string path = BenchJsonPath(filename);
  if (path.empty()) return "";
  if (!tracer.WriteChromeTrace(path)) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return "";
  }
  return path;
}

std::string WriteReportArtifact(const obs::RunReport& report,
                                const std::string& filename) {
  const std::string path = BenchJsonPath(filename);
  if (path.empty()) return "";
  if (!report.WriteFile(path)) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return "";
  }
  return path;
}

}  // namespace proxdet
