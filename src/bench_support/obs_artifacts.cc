#include "bench_support/obs_artifacts.h"

#include <cstdio>

#include "bench_support/bench_json.h"
#include "obs/trace.h"

namespace proxdet {

namespace {

uint64_t CounterOr0(const obs::MetricsSnapshot& snapshot,
                    const std::string& name) {
  const auto it = snapshot.counters.find(name);
  return it == snapshot.counters.end() ? 0 : it->second.second;
}

void CheckField(const obs::MetricsSnapshot& snapshot, const std::string& name,
                uint64_t expected, bool* ok, std::string* error) {
  const uint64_t got = CounterOr0(snapshot, name);
  if (got == expected) return;
  *ok = false;
  if (error != nullptr) {
    *error += name + " = " + std::to_string(got) + ", CommStats says " +
              std::to_string(expected) + "\n";
  }
}

}  // namespace

obs::RunReport MakeRunReport(const std::string& run_name,
                             const CommStats& stats) {
  obs::RunReport report(run_name);
  report.AddCount("comm_stats", "reports", stats.reports);
  report.AddCount("comm_stats", "probes", stats.probes);
  report.AddCount("comm_stats", "alerts", stats.alerts);
  report.AddCount("comm_stats", "region_installs", stats.region_installs);
  report.AddCount("comm_stats", "match_installs", stats.match_installs);
  report.AddCount("comm_stats", "total_messages", stats.TotalMessages());
  report.AddCount("comm_stats", "bytes_up", stats.bytes_up);
  report.AddCount("comm_stats", "bytes_down", stats.bytes_down);
  report.AddCount("comm_stats", "total_bytes", stats.TotalBytes());
  report.AddScalar("timing", "server_seconds", stats.server_seconds);
  report.CaptureMetrics(obs::Metrics().Snapshot());
  return report;
}

bool ReconcileWithCommStats(const obs::MetricsSnapshot& snapshot,
                            const CommStats& stats, std::string* error) {
  if (snapshot.counters.empty()) return true;  // Observability compiled out.
  bool ok = true;
  CheckField(snapshot, "engine.reports", stats.reports, &ok, error);
  CheckField(snapshot, "engine.probes", stats.probes, &ok, error);
  CheckField(snapshot, "engine.alerts", stats.alerts, &ok, error);
  CheckField(snapshot, "engine.region_installs", stats.region_installs, &ok,
             error);
  CheckField(snapshot, "engine.match_installs", stats.match_installs, &ok,
             error);
  CheckField(snapshot, "net.bytes_up", stats.bytes_up, &ok, error);
  CheckField(snapshot, "net.bytes_down", stats.bytes_down, &ok, error);
  return ok;
}

std::string WriteTraceArtifact(const std::string& filename) {
  obs::Tracer& tracer = obs::Tracer::Global();
  if (tracer.span_count() == 0) return "";
  const std::string path = BenchJsonPath(filename);
  if (path.empty()) return "";
  if (!tracer.WriteChromeTrace(path)) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return "";
  }
  return path;
}

std::string WriteReportArtifact(const obs::RunReport& report,
                                const std::string& filename) {
  const std::string path = BenchJsonPath(filename);
  if (path.empty()) return "";
  if (!report.WriteFile(path)) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return "";
  }
  return path;
}

}  // namespace proxdet
