#ifndef PROXDET_BENCH_SUPPORT_BENCH_JSON_H_
#define PROXDET_BENCH_SUPPORT_BENCH_JSON_H_

#include <string>

namespace proxdet {

/// Resolves the output path for a benchmark JSON artifact from the
/// PROXDET_BENCH_JSON environment variable, the convention every bench
/// binary shares: "0" disables emission (returns the empty string),
/// unset/""/"1" writes `filename` to the current directory, and any other
/// value is the target directory.
std::string BenchJsonPath(const std::string& filename);

}  // namespace proxdet

#endif  // PROXDET_BENCH_SUPPORT_BENCH_JSON_H_
