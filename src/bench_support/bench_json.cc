#include "bench_support/bench_json.h"

#include <cstdlib>
#include <cstring>

namespace proxdet {

std::string BenchJsonPath(const std::string& filename) {
  const char* env = std::getenv("PROXDET_BENCH_JSON");
  if (env != nullptr && std::strcmp(env, "0") == 0) return "";
  std::string dir;
  if (env != nullptr && std::strcmp(env, "1") != 0 && env[0] != '\0') {
    dir = env;
    if (dir.back() != '/') dir.push_back('/');
  }
  return dir + filename;
}

}  // namespace proxdet
