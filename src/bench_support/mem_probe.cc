#include "bench_support/mem_probe.h"

#include <malloc.h>

#include <cstdio>
#include <cstring>

namespace proxdet {

std::atomic<uint64_t> AllocProbe::alloc_count{0};
std::atomic<uint64_t> AllocProbe::live_bytes{0};
std::atomic<uint64_t> AllocProbe::peak_live_bytes{0};

size_t ProbeUsableSize(void* p) { return malloc_usable_size(p); }

namespace {

/// Reads a "Vm...:  <kB> kB" line from /proc/self/status. Returns bytes,
/// or 0 when the field (or procfs) is absent.
uint64_t ReadStatusKb(const char* field) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  const size_t field_len = std::strlen(field);
  char line[256];
  uint64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0 && line[field_len] == ':') {
      unsigned long long value = 0;
      if (std::sscanf(line + field_len + 1, "%llu", &value) == 1) {
        kb = value;
      }
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
}

}  // namespace

uint64_t PeakRssBytes() { return ReadStatusKb("VmHWM"); }

uint64_t CurrentRssBytes() { return ReadStatusKb("VmRSS"); }

}  // namespace proxdet
