#include "bench_support/sweep_runner.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench_support/obs_artifacts.h"
#include "common/timer.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"

namespace proxdet {

SweepColumn MethodColumn(Method method, RegionDetector::Options options) {
  return {MethodName(method), [method, options](const Workload& workload) {
            return RunMethod(method, workload, options);
          }};
}

std::vector<SweepColumn> MethodColumns(const std::vector<Method>& methods) {
  std::vector<SweepColumn> columns;
  columns.reserve(methods.size());
  for (const Method m : methods) columns.push_back(MethodColumn(m));
  return columns;
}

SweepRunner::SweepRunner(std::string figure, std::vector<SweepColumn> columns)
    : figure_(std::move(figure)), columns_(std::move(columns)) {}

SweepRunner::SweepRunner(std::string figure, const std::vector<Method>& methods)
    : SweepRunner(std::move(figure), MethodColumns(methods)) {}

void SweepRunner::AddPoint(std::string group, std::string x_value,
                           WorkloadConfig config,
                           std::function<void(Workload*)> customize) {
  points_.push_back({std::move(group), std::move(x_value), config,
                     std::move(customize)});
}

const std::vector<std::vector<RunResult>>& SweepRunner::Run() {
  if (ran_) return results_;
  WallTimer timer;
  // Scope the metrics to this sweep: the post-run snapshot then reconciles
  // against the sum of the cells' CommStats (see WriteRunReport).
  obs::Metrics().Reset();
  results_.assign(points_.size(), std::vector<RunResult>(columns_.size()));

  // Outer fan-out over points, inner over columns: a point's workload is
  // built once on whichever thread claims the point, and its method cells
  // then fan out across the same pool (the nested ParallelFor drains
  // inline under saturation). Peak memory holds at most one workload per
  // in-flight point instead of the whole sweep.
  ParallelFor(points_.size(), [&](size_t p) {
    Workload workload = BuildWorkload(points_[p].config);
    if (points_[p].customize) points_[p].customize(&workload);
    ParallelFor(columns_.size(), [&](size_t c) {
      results_[p][c] = columns_[c].run(workload);
    });
  });

  // Deterministic post-check in grid order, mirroring RunSuite's abort.
  for (size_t p = 0; p < points_.size(); ++p) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (!results_[p][c].alerts_exact) {
        std::fprintf(stderr,
                     "FATAL: %s deviated from the ground-truth alert stream "
                     "on %s (x=%s) — benchmark numbers would be void.\n",
                     columns_[c].label.c_str(), points_[p].group.c_str(),
                     points_[p].x_value.c_str());
        std::abort();
      }
    }
  }
  wall_seconds_ = timer.ElapsedSeconds();
  ran_ = true;
  return results_;
}

std::vector<std::string> SweepRunner::groups() const {
  std::vector<std::string> out;
  for (const Point& point : points_) {
    bool seen = false;
    for (const std::string& g : out) seen = seen || g == point.group;
    if (!seen) out.push_back(point.group);
  }
  return out;
}

std::vector<size_t> SweepRunner::GroupRows(const std::string& group) const {
  std::vector<size_t> rows;
  for (size_t p = 0; p < points_.size(); ++p) {
    if (points_[p].group == group) rows.push_back(p);
  }
  return rows;
}

Table SweepRunner::GroupTable(const std::string& title,
                              const std::string& x_label,
                              const std::string& group) const {
  Table table(title);
  std::vector<std::string> header{x_label};
  for (const SweepColumn& c : columns_) header.push_back(c.label);
  table.SetHeader(std::move(header));
  for (const size_t p : GroupRows(group)) {
    std::vector<std::string> row{points_[p].x_value};
    for (const RunResult& r : results_[p]) {
      row.push_back(std::to_string(r.stats.TotalMessages()));
    }
    table.AddRow(std::move(row));
  }
  return table;
}

namespace {

/// Minimal JSON string escaping for our label vocabulary.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string SweepRunner::WriteJson() const {
  const char* env = std::getenv("PROXDET_BENCH_JSON");
  if (env != nullptr && std::strcmp(env, "0") == 0) return "";
  std::string dir;
  if (env != nullptr && std::strcmp(env, "1") != 0 && env[0] != '\0') {
    dir = env;
    if (dir.back() != '/') dir.push_back('/');
  }
  const std::string path = dir + "BENCH_" + figure_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return "";
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"figure\": \"%s\",\n", JsonEscape(figure_).c_str());
  std::fprintf(f, "  \"threads\": %u,\n", ThreadPool::Global().thread_count());
  std::fprintf(f, "  \"wall_seconds\": %.6f,\n", wall_seconds_);
  std::fprintf(f, "  \"cells\": [\n");
  bool first = true;
  for (size_t p = 0; p < points_.size(); ++p) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      const RunResult& r = results_[p][c];
      std::fprintf(
          f,
          "%s    {\"group\": \"%s\", \"x\": \"%s\", \"column\": \"%s\", "
          "\"num_users\": %zu, \"epochs\": %d, \"seed\": %llu, "
          "\"total_io\": %llu, \"reports\": %llu, \"probes\": %llu, "
          "\"alerts\": %llu, \"region_installs\": %llu, "
          "\"match_installs\": %llu, \"alert_count\": %zu, "
          "\"server_seconds\": %.6f}",
          first ? "" : ",\n", JsonEscape(points_[p].group).c_str(),
          JsonEscape(points_[p].x_value).c_str(),
          JsonEscape(columns_[c].label).c_str(), points_[p].config.num_users,
          points_[p].config.epochs,
          static_cast<unsigned long long>(points_[p].config.seed),
          static_cast<unsigned long long>(r.stats.TotalMessages()),
          static_cast<unsigned long long>(r.stats.reports),
          static_cast<unsigned long long>(r.stats.probes),
          static_cast<unsigned long long>(r.stats.alerts),
          static_cast<unsigned long long>(r.stats.region_installs),
          static_cast<unsigned long long>(r.stats.match_installs),
          r.alert_count, r.stats.server_seconds);
      first = false;
    }
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  WriteRunReport();
  return path;
}

std::string SweepRunner::WriteRunReport() const {
  CommStats total;
  for (const auto& row : results_) {
    for (const RunResult& r : row) total += r.stats;
  }
  obs::RunReport report = MakeRunReport("sweep:" + figure_, total);
  report.AddInfo("figure", figure_);
  report.AddInfo("threads", std::to_string(ThreadPool::Global().thread_count()));
  report.AddScalar("timing", "wall_seconds", wall_seconds_);
  std::string mismatch;
  const bool reconciled =
      ReconcileWithCommStats(report.metrics(), total, &mismatch);
  report.AddInfo("counters_reconcile", reconciled ? "exact" : mismatch);
  return WriteReportArtifact(report, "REPORT_" + figure_ + ".json");
}

}  // namespace proxdet
