#include "road/road_network.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace proxdet {

NodeId RoadNetwork::AddNode(const Vec2& position) {
  if (nodes_.empty()) {
    extent_ = BBox{position, position};
  } else {
    extent_.Extend(position);
  }
  nodes_.push_back(position);
  adjacency_.emplace_back();
  return static_cast<NodeId>(nodes_.size() - 1);
}

void RoadNetwork::AddBidirectionalEdge(NodeId a, NodeId b,
                                       RoadClass road_class) {
  const double len = Distance(nodes_[a], nodes_[b]);
  adjacency_[a].push_back({b, len, road_class});
  adjacency_[b].push_back({a, len, road_class});
}

size_t RoadNetwork::edge_count() const {
  size_t total = 0;
  for (const auto& adj : adjacency_) total += adj.size();
  return total / 2;
}

RoadNetwork RoadNetwork::MakeCityGrid(int rows, int cols, double spacing,
                                      int arterial_every, double jitter,
                                      Rng* rng) {
  RoadNetwork net;
  std::vector<NodeId> ids(static_cast<size_t>(rows) * cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const Vec2 p{c * spacing + rng->Uniform(-jitter, jitter),
                   r * spacing + rng->Uniform(-jitter, jitter)};
      ids[static_cast<size_t>(r) * cols + c] = net.AddNode(p);
    }
  }
  auto id_at = [&ids, cols](int r, int c) {
    return ids[static_cast<size_t>(r) * cols + c];
  };
  auto klass = [arterial_every](int index) {
    return (arterial_every > 0 && index % arterial_every == 0)
               ? RoadClass::kArterial
               : RoadClass::kLocal;
  };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        net.AddBidirectionalEdge(id_at(r, c), id_at(r, c + 1), klass(r));
      }
      if (r + 1 < rows) {
        net.AddBidirectionalEdge(id_at(r, c), id_at(r + 1, c), klass(c));
      }
    }
  }
  return net;
}

RoadNetwork RoadNetwork::MakeHighwaySkeleton(const BBox& extent, int corridors,
                                             int points_per_corridor,
                                             Rng* rng) {
  RoadNetwork net;
  std::vector<std::vector<NodeId>> corridor_nodes;
  for (int c = 0; c < corridors; ++c) {
    // Each corridor runs roughly across the extent with gentle waviness:
    // trucks on highways drive long near-straight stretches.
    const bool horizontal = rng->NextBool(0.5);
    std::vector<NodeId> nodes;
    const double fixed = horizontal
                             ? rng->Uniform(extent.lo.y, extent.hi.y)
                             : rng->Uniform(extent.lo.x, extent.hi.x);
    double wander = 0.0;
    double drift = 0.0;  // Smoothed curvature: long, gentle highway arcs.
    for (int i = 0; i < points_per_corridor; ++i) {
      const double t = static_cast<double>(i) / (points_per_corridor - 1);
      drift = 0.97 * drift + rng->Gaussian(0.0, extent.Width() * 0.0001);
      wander = 0.98 * (wander + drift);
      Vec2 p;
      if (horizontal) {
        p = {extent.lo.x + t * extent.Width(), fixed + wander};
      } else {
        p = {fixed + wander, extent.lo.y + t * extent.Height()};
      }
      nodes.push_back(net.AddNode(extent.Clamp(p)));
      if (i > 0) {
        net.AddBidirectionalEdge(nodes[i - 1], nodes[i], RoadClass::kHighway);
      }
    }
    corridor_nodes.push_back(std::move(nodes));
  }
  // Interchanges: link each pair of corridors at their closest node pair so
  // the network is connected and trips can switch highways.
  for (size_t a = 0; a < corridor_nodes.size(); ++a) {
    for (size_t b = a + 1; b < corridor_nodes.size(); ++b) {
      double best = std::numeric_limits<double>::infinity();
      NodeId na = -1, nb = -1;
      for (NodeId ia : corridor_nodes[a]) {
        for (NodeId ib : corridor_nodes[b]) {
          const double d = Distance(net.node_position(ia), net.node_position(ib));
          if (d < best) {
            best = d;
            na = ia;
            nb = ib;
          }
        }
      }
      if (na >= 0) net.AddBidirectionalEdge(na, nb, RoadClass::kArterial);
    }
  }
  return net;
}

NodeId RoadNetwork::NearestNode(const Vec2& p) const {
  NodeId best = -1;
  double best_d = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const double d = SquaredDistance(nodes_[i], p);
    if (d < best_d) {
      best_d = d;
      best = static_cast<NodeId>(i);
    }
  }
  return best;
}

NodeId RoadNetwork::RandomNode(Rng* rng) const {
  return static_cast<NodeId>(rng->NextIndex(nodes_.size()));
}

namespace {

// Route-choice weights: drivers prefer arterials and highways even when
// slightly longer, which concentrates trips on the major (straighter)
// corridors — as real taxi/truck GPS traces do.
double RouteCostFactor(RoadClass road_class) {
  switch (road_class) {
    case RoadClass::kLocal:
      return 1.6;
    case RoadClass::kArterial:
      return 1.0;
    case RoadClass::kHighway:
      return 0.8;
  }
  return 1.0;
}

}  // namespace

std::vector<NodeId> RoadNetwork::ShortestPath(NodeId from, NodeId to) const {
  const size_t n = nodes_.size();
  std::vector<double> dist(n, std::numeric_limits<double>::infinity());
  std::vector<NodeId> prev(n, -1);
  using Entry = std::pair<double, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[from] = 0.0;
  heap.push({0.0, from});
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;
    if (u == to) break;
    for (const RoadEdge& e : adjacency_[u]) {
      const double nd = d + e.length * RouteCostFactor(e.road_class);
      if (nd < dist[e.to]) {
        dist[e.to] = nd;
        prev[e.to] = u;
        heap.push({nd, e.to});
      }
    }
  }
  if (dist[to] == std::numeric_limits<double>::infinity()) return {};
  std::vector<NodeId> path;
  for (NodeId v = to; v != -1; v = prev[v]) path.push_back(v);
  std::reverse(path.begin(), path.end());
  return path;
}

Polyline RoadNetwork::PathGeometry(const std::vector<NodeId>& path) const {
  std::vector<Vec2> pts;
  pts.reserve(path.size());
  for (NodeId id : path) pts.push_back(nodes_[id]);
  return Polyline(std::move(pts));
}

RoadClass RoadNetwork::EdgeClass(NodeId from, NodeId to) const {
  for (const RoadEdge& e : adjacency_[from]) {
    if (e.to == to) return e.road_class;
  }
  return RoadClass::kLocal;
}

}  // namespace proxdet
