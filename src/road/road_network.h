#ifndef PROXDET_ROAD_ROAD_NETWORK_H_
#define PROXDET_ROAD_ROAD_NETWORK_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "geom/bbox.h"
#include "geom/polyline.h"
#include "geom/vec2.h"

namespace proxdet {

/// Road classes drive the speed profile of trips routed over the network.
enum class RoadClass : uint8_t {
  kLocal,     // City streets: slow, frequent turns.
  kArterial,  // Major city roads.
  kHighway,   // Inter-city highways: fast, straight.
};

/// Node/edge identifiers into the network's internal arrays.
using NodeId = int32_t;

/// A directed half-edge of the road graph.
struct RoadEdge {
  NodeId to = -1;
  double length = 0.0;  // meters
  RoadClass road_class = RoadClass::kLocal;
};

/// In-memory road graph with Dijkstra routing. Serves as the motion
/// substrate behind the synthetic datasets (DESIGN.md §2.1): instead of
/// replaying proprietary GPS logs we route trips over city grids and
/// highway skeletons, which reproduces the turn/speed structure the
/// prediction models key on.
class RoadNetwork {
 public:
  RoadNetwork() = default;

  /// City grid: `rows` x `cols` intersections spaced `spacing` meters apart,
  /// with a slight per-node jitter so streets are not perfectly axis
  /// aligned. `arterial_every` marks every k-th row/column as arterial.
  static RoadNetwork MakeCityGrid(int rows, int cols, double spacing,
                                  int arterial_every, double jitter,
                                  Rng* rng);

  /// Highway skeleton: `corridors` long multi-segment polylines crossing the
  /// given extent, cross-linked at interchanges, plus sparse local ramps.
  static RoadNetwork MakeHighwaySkeleton(const BBox& extent, int corridors,
                                         int points_per_corridor, Rng* rng);

  size_t node_count() const { return nodes_.size(); }
  size_t edge_count() const;
  const Vec2& node_position(NodeId id) const { return nodes_[id]; }
  const std::vector<RoadEdge>& edges_from(NodeId id) const {
    return adjacency_[id];
  }
  const BBox& extent() const { return extent_; }

  /// Node closest to p (linear scan; networks here are small).
  NodeId NearestNode(const Vec2& p) const;

  /// Uniformly random node.
  NodeId RandomNode(Rng* rng) const;

  /// Shortest path by length from `from` to `to`. Returns an empty vector
  /// when unreachable; otherwise the node sequence including both ends.
  std::vector<NodeId> ShortestPath(NodeId from, NodeId to) const;

  /// Geometry of a node path as a polyline.
  Polyline PathGeometry(const std::vector<NodeId>& path) const;

  /// Road class of the edge from `from` to `to` (kLocal when absent).
  RoadClass EdgeClass(NodeId from, NodeId to) const;

  /// Adds an undirected edge; used by the builders and by tests.
  void AddBidirectionalEdge(NodeId a, NodeId b, RoadClass road_class);

  /// Adds a node and returns its id.
  NodeId AddNode(const Vec2& position);

 private:
  std::vector<Vec2> nodes_;
  std::vector<std::vector<RoadEdge>> adjacency_;
  BBox extent_{{0, 0}, {0, 0}};
};

}  // namespace proxdet

#endif  // PROXDET_ROAD_ROAD_NETWORK_H_
