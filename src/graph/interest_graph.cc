#include "graph/interest_graph.h"

#include <algorithm>

namespace proxdet {

InterestGraph::InterestGraph(size_t user_count)
    : adjacency_(user_count), preferred_radius_(user_count, 0.0) {}

InterestGraph InterestGraph::Random(size_t user_count, double avg_friends,
                                    double radius_lo, double radius_hi,
                                    Rng* rng) {
  InterestGraph g(user_count);
  for (size_t u = 0; u < user_count; ++u) {
    g.preferred_radius_[u] = rng->Uniform(radius_lo, radius_hi);
  }
  if (user_count < 2) return g;
  // Average degree F means F*N/2 edges.
  const size_t target_edges = static_cast<size_t>(
      avg_friends * static_cast<double>(user_count) / 2.0 + 0.5);
  size_t added = 0;
  size_t attempts = 0;
  const size_t max_attempts = target_edges * 20 + 100;
  while (added < target_edges && attempts < max_attempts) {
    ++attempts;
    const UserId u = static_cast<UserId>(rng->NextIndex(user_count));
    const UserId w = static_cast<UserId>(rng->NextIndex(user_count));
    if (u == w) continue;
    const double r =
        std::min(g.preferred_radius_[u], g.preferred_radius_[w]);
    if (g.AddEdge(u, w, r)) ++added;
  }
  return g;
}

double InterestGraph::AverageDegree() const {
  if (adjacency_.empty()) return 0.0;
  return 2.0 * static_cast<double>(edge_count_) /
         static_cast<double>(adjacency_.size());
}

bool InterestGraph::HasEdge(UserId u, UserId w) const {
  for (const FriendEdge& e : adjacency_[u]) {
    if (e.other == w) return true;
  }
  return false;
}

double InterestGraph::AlertRadius(UserId u, UserId w) const {
  for (const FriendEdge& e : adjacency_[u]) {
    if (e.other == w) return e.alert_radius;
  }
  return 0.0;
}

double InterestGraph::MaxAlertRadius() const {
  double max_r = 0.0;
  for (const auto& adj : adjacency_) {
    for (const FriendEdge& e : adj) max_r = std::max(max_r, e.alert_radius);
  }
  return max_r;
}

double InterestGraph::MaxIncidentRadius(UserId u) const {
  double max_r = 0.0;
  for (const FriendEdge& e : adjacency_[u]) {
    max_r = std::max(max_r, e.alert_radius);
  }
  return max_r;
}

bool InterestGraph::AddEdge(UserId u, UserId w, double alert_radius) {
  if (u == w || u < 0 || w < 0) return false;
  if (static_cast<size_t>(u) >= adjacency_.size() ||
      static_cast<size_t>(w) >= adjacency_.size()) {
    return false;
  }
  if (HasEdge(u, w)) return false;
  adjacency_[u].push_back({w, alert_radius});
  adjacency_[w].push_back({u, alert_radius});
  ++edge_count_;
  return true;
}

bool InterestGraph::RemoveEdge(UserId u, UserId w) {
  auto erase_from = [](std::vector<FriendEdge>& adj, UserId other) {
    for (size_t i = 0; i < adj.size(); ++i) {
      if (adj[i].other == other) {
        adj[i] = adj.back();
        adj.pop_back();
        return true;
      }
    }
    return false;
  };
  if (!erase_from(adjacency_[u], w)) return false;
  erase_from(adjacency_[w], u);
  --edge_count_;
  return true;
}

std::vector<InterestGraph::Edge> InterestGraph::Edges() const {
  std::vector<Edge> out;
  out.reserve(edge_count_);
  for (size_t u = 0; u < adjacency_.size(); ++u) {
    for (const FriendEdge& e : adjacency_[u]) {
      if (e.other > static_cast<UserId>(u)) {
        out.push_back({static_cast<UserId>(u), e.other, e.alert_radius});
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.w < b.w;
  });
  return out;
}

double InterestGraph::PreferredRadius(UserId u) const {
  return preferred_radius_[u];
}

}  // namespace proxdet
