#ifndef PROXDET_GRAPH_INTEREST_GRAPH_H_
#define PROXDET_GRAPH_INTEREST_GRAPH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"

namespace proxdet {

using UserId = int32_t;

/// An undirected "friend" edge with its alert radius r_{u,w} (Sec. II).
struct FriendEdge {
  UserId other = -1;
  double alert_radius = 0.0;
};

/// The interest graph G = (V, E): which user pairs should be alerted when
/// they come within their alert radius. Supports the dynamic edge
/// insertion/deletion workload of Sec. VI-E.
class InterestGraph {
 public:
  InterestGraph() = default;
  explicit InterestGraph(size_t user_count);

  /// Random graph with an average of `avg_friends` friends per user, every
  /// edge carrying `alert_radius` = min of the two endpoints' preferred
  /// radii drawn uniformly from [radius_lo, radius_hi]. Mirrors the
  /// synthetic interest graphs of [19] used by the paper.
  static InterestGraph Random(size_t user_count, double avg_friends,
                              double radius_lo, double radius_hi, Rng* rng);

  size_t user_count() const { return adjacency_.size(); }
  size_t edge_count() const { return edge_count_; }
  double AverageDegree() const;

  const std::vector<FriendEdge>& FriendsOf(UserId u) const {
    return adjacency_[u];
  }

  bool HasEdge(UserId u, UserId w) const;

  /// Alert radius of the (u, w) edge; 0 when absent.
  double AlertRadius(UserId u, UserId w) const;

  /// Largest alert radius over all edges (0 for an edgeless graph) — the
  /// cell-size anchor of the detectors' uniform-grid indexes.
  double MaxAlertRadius() const;

  /// Largest alert radius among u's incident edges (0 when isolated) —
  /// the per-user candidate query radius: any friend within its pair's
  /// alert radius of u is certainly within this distance.
  double MaxIncidentRadius(UserId u) const;

  /// Adds an undirected edge; no-op (returns false) when it already exists
  /// or u == w.
  bool AddEdge(UserId u, UserId w, double alert_radius);

  /// Removes the edge; returns false when absent.
  bool RemoveEdge(UserId u, UserId w);

  /// All edges as (u, w, r) with u < w; ordering is deterministic.
  struct Edge {
    UserId u;
    UserId w;
    double alert_radius;
  };
  std::vector<Edge> Edges() const;

  /// The per-user preferred radius r_u used by Random(); 0 if not built via
  /// Random(). Exposed for reporting.
  double PreferredRadius(UserId u) const;

 private:
  std::vector<std::vector<FriendEdge>> adjacency_;
  std::vector<double> preferred_radius_;
  size_t edge_count_ = 0;
};

}  // namespace proxdet

#endif  // PROXDET_GRAPH_INTEREST_GRAPH_H_
