// Fleet convoy monitoring: a logistics operator tracks long-haul trucks
// and wants a ping when two partner trucks are close enough to convoy
// (drafting, shared rest stops). Truck pairs that meet tend to STAY
// together, which exercises the match region (Def. 3): as long as both
// stay inside the shared circle, the pair costs no communication at all.
//
// Demonstrates: the Truck workload, per-method comparison including the
// match-region machinery, and interpreting the message breakdown.

#include <cstdio>

#include "common/table.h"
#include "core/simulation.h"

using namespace proxdet;

int main() {
  WorkloadConfig config;
  config.dataset = DatasetKind::kTruck;
  config.num_users = 200;
  config.epochs = 200;
  config.speed_steps = 8;
  config.avg_friends = 10.0;       // Partner carriers.
  config.alert_radius_m = 4000.0;  // Close enough to coordinate a stop.
  config.seed = 1177;

  std::printf("Monitoring %zu trucks, %d epochs, convoy radius %.0f km\n\n",
              config.num_users, config.epochs,
              config.alert_radius_m / 1000.0);
  const Workload workload = BuildWorkload(config);

  Table table("Convoy detection: message breakdown by method");
  table.SetHeader({"method", "total", "uploads", "probes", "safe-regions",
                   "match-regions", "exact"});
  for (const Method method :
       {Method::kNaive, Method::kStatic, Method::kFmd, Method::kCmd,
        Method::kStripeKf}) {
    const RunResult r = RunMethod(method, workload);
    table.AddRow({MethodName(method), std::to_string(r.stats.TotalMessages()),
                  std::to_string(r.stats.reports),
                  std::to_string(r.stats.probes),
                  std::to_string(r.stats.region_installs),
                  std::to_string(r.stats.match_installs),
                  r.alerts_exact ? "yes" : "NO"});
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf(
      "Reading the table:\n"
      " - FMD pays for its constant-speed assumption: jams and toll stops\n"
      "   strand its mobile circles, forcing constant rebuilds.\n"
      " - The stripe is time-independent along its predicted path, so a\n"
      "   truck stuck in traffic on the predicted highway stays safe.\n"
      " - match-regions are identical across methods: once a convoy forms,\n"
      "   Def. 3 takes over regardless of the safe-region flavor.\n");
  return 0;
}
