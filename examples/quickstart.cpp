// Quickstart: build a small proximity-detection workload, run every method
// of the paper's evaluation, and compare communication I/O.
//
// This is the 60-second tour of the public API:
//   WorkloadConfig -> BuildWorkload -> RunMethod -> CommStats.

#include <cstdio>

#include "common/table.h"
#include "core/simulation.h"

int main() {
  using namespace proxdet;

  WorkloadConfig config;
  config.dataset = DatasetKind::kTruck;
  config.num_users = 80;
  config.epochs = 100;
  config.speed_steps = 8;
  config.avg_friends = 8.0;
  config.alert_radius_m = 6000.0;
  config.seed = 7;

  std::printf("Building workload: %s, N=%zu, S=%d, F=%.0f, r=%.0fkm...\n",
              DatasetName(config.dataset).c_str(), config.num_users,
              config.epochs, config.avg_friends,
              config.alert_radius_m / 1000.0);
  const Workload workload = BuildWorkload(config);
  std::printf("Ground truth: %zu alerts over %d epochs.\n\n",
              workload.ground_truth.size(), config.epochs);

  Table table("Continuous proximity detection: communication I/O");
  table.SetHeader({"method", "total I/O", "reports", "probes", "region",
                   "match", "alerts-ok"});
  for (const Method method : PaperMethodSet()) {
    const RunResult result = RunMethod(method, workload);
    table.AddRow({MethodName(method),
                  std::to_string(result.stats.TotalMessages()),
                  std::to_string(result.stats.reports),
                  std::to_string(result.stats.probes),
                  std::to_string(result.stats.region_installs),
                  std::to_string(result.stats.match_installs),
                  result.alerts_exact ? "yes" : "NO"});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Every method must report the exact same alert stream; safe regions\n"
      "only trade communication for bookkeeping (Definition 2).\n");
  return 0;
}
