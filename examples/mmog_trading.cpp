// Item trading in a massively multiplayer online game (application 3 of
// the paper's introduction): players are "interested" in each other when
// one carries an item the other wants, and a trade prompt fires when the
// matching pair becomes mutually visible. Items change hands constantly,
// so the interest graph churns — the dynamic-update path of Sec. VI-E.
//
// Demonstrates: driving the dynamic interest graph (ScheduleUpdate) with a
// simulated item economy, and measuring how edge churn affects I/O.

#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "common/table.h"
#include "core/simulation.h"

using namespace proxdet;

int main() {
  // The "game world" is a dense city map: players move like pedestrians
  // with sprints (GeoLife's mode mix is a decent stand-in for walk/mount).
  WorkloadConfig config;
  config.dataset = DatasetKind::kGeoLife;
  config.num_users = 120;
  config.epochs = 150;
  config.speed_steps = 8;
  config.avg_friends = 6.0;        // Initial item-interest matches.
  config.alert_radius_m = 1500.0;  // "Visible in the same zone."
  config.seed = 99;

  Table table("MMOG trading: I/O vs item-economy churn (Stripe+KF)");
  table.SetHeader({"trades/epoch", "total I/O", "probes", "alerts(prompts)",
                   "exact"});

  for (const int trades_per_epoch : {0, 2, 5, 10}) {
    Workload workload = BuildWorkload(config);
    Rng economy(7 + trades_per_epoch);
    // Every trade retires one interest edge (the item changed hands) and
    // mints a new one between a random pair.
    std::vector<InterestGraph::Edge> live = workload.world.graph().Edges();
    for (int epoch = 1; epoch < config.epochs; ++epoch) {
      for (int k = 0; k < trades_per_epoch && !live.empty(); ++k) {
        const size_t victim = economy.NextIndex(live.size());
        workload.world.ScheduleUpdate(
            {epoch, false, live[victim].u, live[victim].w, 0.0});
        live[victim] = live.back();
        live.pop_back();
        const UserId u =
            static_cast<UserId>(economy.NextIndex(config.num_users));
        const UserId w =
            static_cast<UserId>(economy.NextIndex(config.num_users));
        if (u != w) {
          workload.world.ScheduleUpdate(
              {epoch, true, u, w, config.alert_radius_m});
          live.push_back({u, w, config.alert_radius_m});
        }
      }
    }
    const RunResult r = RunMethod(Method::kStripeKf, workload);
    table.AddRow({std::to_string(trades_per_epoch),
                  std::to_string(r.stats.TotalMessages()),
                  std::to_string(r.stats.probes),
                  std::to_string(r.alert_count),
                  r.alerts_exact ? "yes" : "NO"});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Edge churn adds probes (each insertion near a pair forces a check)\n"
      "but detection stays exact — the Sec. VI-E result.\n");
  return 0;
}
