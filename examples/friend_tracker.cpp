// Social friendship tracking (application 1 of the paper's introduction):
// pedestrians in a GeoLife-like city share their location with friends and
// want an alert whenever a friend comes within walking distance.
//
// Demonstrates: building a custom workload, inspecting the alert stream,
// and comparing the communication bill against the always-on baseline.

#include <cstdio>

#include "common/table.h"
#include "core/simulation.h"

using namespace proxdet;

int main() {
  WorkloadConfig config;
  config.dataset = DatasetKind::kGeoLife;
  config.num_users = 150;
  config.epochs = 200;
  config.speed_steps = 8;         // 40 s between proximity checks.
  config.avg_friends = 12.0;      // A close-friends circle, not a feed.
  config.alert_radius_m = 800.0;  // "Your friend is a short walk away."
  config.seed = 2026;

  std::printf("Simulating %zu pedestrians for %d epochs (alert radius %.0fm)\n",
              config.num_users, config.epochs, config.alert_radius_m);
  const Workload workload = BuildWorkload(config);

  // The predictive safe region with the strongest model from Fig. 7.
  const RunResult stripe = RunMethod(Method::kStripeKf, workload);
  const RunResult naive = RunMethod(Method::kNaive, workload);
  if (!stripe.alerts_exact || !naive.alerts_exact) {
    std::printf("detector deviated from ground truth!\n");
    return 1;
  }

  std::printf("\n%zu encounters detected. First few:\n",
              workload.ground_truth.size());
  int shown = 0;
  for (const AlertEvent& alert : workload.ground_truth) {
    if (++shown > 5) break;
    std::printf("  epoch %3d: users %d and %d came within %.0fm\n",
                alert.epoch, alert.u, alert.w, config.alert_radius_m);
  }

  // Who pays for what: the communication bill.
  Table bill("Communication bill: Stripe+KF vs always-on reporting");
  bill.SetHeader({"metric", "Stripe+KF", "Naive"});
  auto row = [&bill](const std::string& name, uint64_t a, uint64_t b) {
    bill.AddRow({name, std::to_string(a), std::to_string(b)});
  };
  row("total messages", stripe.stats.TotalMessages(),
      naive.stats.TotalMessages());
  row("location uploads", stripe.stats.reports, naive.stats.reports);
  row("server probes", stripe.stats.probes, naive.stats.probes);
  row("region installs",
      stripe.stats.region_installs + stripe.stats.match_installs, 0);
  std::printf("\n%s", bill.ToString().c_str());

  const double saving =
      100.0 * (1.0 - static_cast<double>(stripe.stats.TotalMessages()) /
                         static_cast<double>(naive.stats.TotalMessages()));
  std::printf(
      "\nThe predictive safe region answered the same %zu encounters with "
      "%.1f%% fewer messages.\n",
      workload.ground_truth.size(), saving);

  // Messages per user per hour, the number a mobile battery cares about.
  const double hours = config.epochs * workload.world.epoch_seconds() / 3600.0;
  std::printf("Per user: %.1f msg/h (stripe) vs %.1f msg/h (always-on).\n",
              stripe.stats.TotalMessages() / (config.num_users * hours),
              naive.stats.TotalMessages() / (config.num_users * hours));
  return 0;
}
