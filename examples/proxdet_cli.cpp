// proxdet_cli: run any (dataset, method, parameters) combination from the
// command line and print the communication accounting — the fastest way to
// explore the design space without writing code.
//
// Usage:
//   proxdet_cli [--dataset truck|geolife|beijing|singapore]
//               [--scenario commuter_rush|flash_crowd|heavy_churn|mixed_fleet]
//               [--stream|--no-stream]
//               [--method all|naive|static|fmd|cmd|stripe-kf|stripe-rmf|
//                         stripe-hmm|stripe-r2d2|stripe-linear]
//               [--users N] [--epochs S] [--friends F] [--radius-km R]
//               [--speed V] [--seed SEED] [--csv]
//               [--shards N] [--batch]
//               [--transport sim|udp] [--port P] [--loopback-clients N]
//               [--stats-port P] [--flight-dump FILE]
//               [--trace FILE] [--report FILE]
//
// --scenario replaces the dataset workload with a city-scale scenario from
// the streaming substrate: positions are generated per epoch from a seeded
// RNG in O(active users) memory (default; --no-stream materializes the
// same streams up front, bit-exact by contract), and the table grows
// ep/s and B/user columns — epoch throughput and steady-state resident
// bytes per user. Above 100k users the ground-truth sweep is skipped and
// the `exact` column is vacuously yes — this is what makes
// `--scenario commuter_rush --users 1000000` finish.
//
// --trace writes the run's epoch-phase spans as Chrome trace_event JSON
// (load in chrome://tracing or ui.perfetto.dev); --report writes a
// RunReport joining the metrics snapshot with the aggregate CommStats.
//
// --stats-port P serves the live introspection endpoint on loopback TCP
// port P for each run's duration: GET /metrics answers Prometheus text,
// any other path a JSON snapshot (counters, gauges, p50/p99/p999
// quantiles, the flight-recorder head). Implies the serving plane (like
// --shards 1). --flight-dump FILE arms the protocol flight recorder's
// post-mortem: on a reliability give-up or socket idle-timeout the
// bounded per-shard ring of protocol events (sends, acks, retransmits,
// dedups, forwards, give-ups) is written to FILE as JSON.
//
// --shards N runs every method through the simulated serving plane with N
// consistent-hash ProtocolServer partitions (wire columns appear in the
// table); --batch additionally coalesces each epoch's downlink per client
// into one frame and ships grid-snapped installs delta-compressed. Alerts
// stay bit-exact with the in-process engine either way — the `exact`
// column proves it on every run.
//
// --transport udp carries the same serving plane over real UDP loopback
// sockets (epoll event loops, one per shard; every client a nonblocking
// socket) instead of the deterministic SimNet — the `exact` column still
// has to say yes, which is the point. --port P binds the shard-facing
// sockets at P, P+1, ... (default: kernel-assigned ephemeral ports);
// --loopback-clients N sizes the event-loop pool shared by the client
// sockets (default 2).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "bench_support/mem_probe.h"
#include "bench_support/obs_artifacts.h"
#include "common/table.h"
#include "common/timer.h"
#include "core/simulation.h"
#include "net/transport.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

using namespace proxdet;

namespace {

std::optional<DatasetKind> ParseDataset(const std::string& s) {
  if (s == "truck") return DatasetKind::kTruck;
  if (s == "geolife" || s == "geo") return DatasetKind::kGeoLife;
  if (s == "beijing" || s == "bj") return DatasetKind::kBeijingTaxi;
  if (s == "singapore" || s == "sg") return DatasetKind::kSingaporeTaxi;
  return std::nullopt;
}

std::optional<Method> ParseMethod(const std::string& s) {
  if (s == "naive") return Method::kNaive;
  if (s == "static") return Method::kStatic;
  if (s == "fmd") return Method::kFmd;
  if (s == "cmd") return Method::kCmd;
  if (s == "stripe-kf") return Method::kStripeKf;
  if (s == "stripe-rmf") return Method::kStripeRmf;
  if (s == "stripe-hmm") return Method::kStripeHmm;
  if (s == "stripe-r2d2") return Method::kStripeR2d2;
  if (s == "stripe-linear") return Method::kStripeLinear;
  return std::nullopt;
}

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--dataset D] [--method M|all] [--users N]\n"
               "          [--scenario commuter_rush|flash_crowd|heavy_churn|\n"
               "                      mixed_fleet] [--stream|--no-stream]\n"
               "          [--epochs S] [--friends F] [--radius-km R]\n"
               "          [--speed V] [--seed X] [--csv]\n"
               "          [--shards N] [--batch]\n"
               "          [--transport sim|udp] [--port P]"
               " [--loopback-clients N]\n"
               "          [--stats-port P] [--flight-dump FILE]\n"
               "          [--trace FILE] [--report FILE]\n"
               "\n"
               "  --stats-port P   serve live introspection on loopback TCP\n"
               "                   port P while each run is up: GET /metrics\n"
               "                   -> Prometheus text, anything else -> JSON\n"
               "                   snapshot incl. the flight-recorder head\n"
               "                   (implies the serving plane, like"
               " --shards 1)\n"
               "  --flight-dump F  write the protocol flight recorder's ring\n"
               "                   (sends/acks/retransmits/dedups/forwards)\n"
               "                   to F as JSON on a reliability give-up or\n"
               "                   socket idle-timeout\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  WorkloadConfig config;
  config.dataset = DatasetKind::kTruck;
  config.num_users = 200;
  config.epochs = 150;
  config.avg_friends = 15.0;
  config.alert_radius_m = 5000.0;
  std::string method_arg = "all";
  bool csv = false;
  std::string scenario_arg;  // Empty = dataset workload (BuildWorkload).
  bool stream = true;
  bool users_set = false;
  bool epochs_set = false;
  bool friends_set = false;
  bool radius_set = false;
  int shards = 0;  // 0 = in-process (no transport); >= 1 = transported.
  bool batch = false;
  std::string transport_arg = "sim";
  int udp_port = 0;
  int loopback_clients = 0;
  int stats_port = -1;  // -1 = no live endpoint.
  std::string flight_dump_path;
  std::string trace_path;
  std::string report_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--dataset") {
      const auto d = ParseDataset(next());
      if (!d) {
        Usage(argv[0]);
        return 2;
      }
      config.dataset = *d;
    } else if (arg == "--method") {
      method_arg = next();
    } else if (arg == "--scenario") {
      scenario_arg = next();
      ScenarioKind kind;
      if (!ParseScenarioName(scenario_arg, &kind)) {
        Usage(argv[0]);
        return 2;
      }
    } else if (arg == "--stream") {
      stream = true;
    } else if (arg == "--no-stream") {
      stream = false;
    } else if (arg == "--users") {
      config.num_users = static_cast<size_t>(std::atoll(next()));
      users_set = true;
    } else if (arg == "--epochs") {
      config.epochs = std::atoi(next());
      epochs_set = true;
    } else if (arg == "--friends") {
      config.avg_friends = std::atof(next());
      friends_set = true;
    } else if (arg == "--radius-km") {
      config.alert_radius_m = std::atof(next()) * 1000.0;
      radius_set = true;
    } else if (arg == "--speed") {
      config.speed_steps = std::atoi(next());
    } else if (arg == "--seed") {
      config.seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--shards") {
      shards = std::atoi(next());
      if (shards < 1) {
        Usage(argv[0]);
        return 2;
      }
    } else if (arg == "--batch") {
      batch = true;
    } else if (arg == "--transport") {
      transport_arg = next();
      if (transport_arg != "sim" && transport_arg != "udp") {
        Usage(argv[0]);
        return 2;
      }
    } else if (arg == "--port") {
      udp_port = std::atoi(next());
      if (udp_port < 0 || udp_port > 65535) {
        Usage(argv[0]);
        return 2;
      }
    } else if (arg == "--loopback-clients") {
      loopback_clients = std::atoi(next());
      if (loopback_clients < 1) {
        Usage(argv[0]);
        return 2;
      }
    } else if (arg == "--stats-port") {
      stats_port = std::atoi(next());
      if (stats_port < 0 || stats_port > 65535) {
        Usage(argv[0]);
        return 2;
      }
    } else if (arg == "--flight-dump") {
      flight_dump_path = next();
    } else if (arg == "--trace") {
      trace_path = next();
    } else if (arg == "--report") {
      report_path = next();
    } else {
      Usage(argv[0]);
      return 2;
    }
  }

  std::vector<Method> methods;
  if (method_arg == "all") {
    methods = PaperMethodSet();
  } else {
    const auto m = ParseMethod(method_arg);
    if (!m) {
      Usage(argv[0]);
      return 2;
    }
    methods.push_back(*m);
  }

  const bool scenario_mode = !scenario_arg.empty();
  double build_bytes_per_user = 0.0;
  const Workload workload = [&] {
    if (!scenario_mode) {
      std::fprintf(stderr,
                   "building %s workload: N=%zu S=%d F=%.0f r=%.1fkm V=%d\n",
                   DatasetName(config.dataset).c_str(), config.num_users,
                   config.epochs, config.avg_friends,
                   config.alert_radius_m / 1000.0, config.speed_steps);
      return BuildWorkload(config);
    }
    ScenarioWorkloadConfig sc;
    ParseScenarioName(scenario_arg, &sc.scenario.kind);
    sc.scenario.num_users = users_set ? config.num_users : 10000;
    sc.scenario.epochs = epochs_set ? config.epochs : 60;
    sc.scenario.speed_steps = config.speed_steps;
    // City scenarios default to their own density (2 friends, 400 m) —
    // the dataset workload's 15-friend / 5 km defaults would drown a
    // 200 m-spaced grid in alerts. Explicit flags still win.
    if (friends_set) sc.scenario.avg_friends = config.avg_friends;
    if (radius_set) sc.scenario.alert_radius_m = config.alert_radius_m;
    sc.scenario.seed = config.seed;
    sc.stream = stream;
    // The O(E x epochs) oracle sweep is what a million-user run cannot
    // afford; past this point the exact column is vacuously yes.
    sc.compute_ground_truth = sc.scenario.num_users <= 100000;
    std::fprintf(stderr,
                 "building %s scenario: N=%zu S=%d F=%.0f r=%.1fkm %s%s\n",
                 scenario_arg.c_str(), sc.scenario.num_users,
                 sc.scenario.epochs, sc.scenario.avg_friends,
                 sc.scenario.alert_radius_m / 1000.0,
                 stream ? "streaming" : "materialized",
                 sc.compute_ground_truth ? "" : " (oracle skipped)");
    const uint64_t rss_before = CurrentRssBytes();
    Workload w = BuildScenarioWorkload(sc);
    const uint64_t rss_after = CurrentRssBytes();
    build_bytes_per_user =
        static_cast<double>(rss_after > rss_before ? rss_after - rss_before
                                                   : 0) /
        static_cast<double>(sc.scenario.num_users);
    config.num_users = sc.scenario.num_users;
    config.epochs = sc.scenario.epochs;
    return w;
  }();
  if (scenario_mode) {
    std::fprintf(stderr, "workload build: %.0f resident B/user\n",
                 build_bytes_per_user);
  }
  if (!scenario_mode || workload.oracle_enabled) {
    std::fprintf(stderr, "%zu ground-truth alerts\n",
                 workload.GroundTruth().size());
  }

  // Scope the metrics (and optionally the tracer) to exactly the runs
  // below so a --report snapshot reconciles with the summed CommStats.
  obs::Metrics().Reset();
  obs::Tracer& tracer = obs::Tracer::Global();
  if (!trace_path.empty()) {
    tracer.Clear();
    tracer.Enable();
  }

  if (!flight_dump_path.empty()) {
    obs::Flight().set_dump_path(flight_dump_path);
  }

  // --batch, --transport udp or --stats-port without --shards still runs
  // the serving plane (one partition).
  const bool udp = transport_arg == "udp";
  const bool transported = shards >= 1 || batch || udp || stats_port >= 0;
  net::NetConfig net_config;
  net_config.shards = shards >= 1 ? shards : 1;
  net_config.batch_downlink = batch;
  net_config.compress_installs = batch;
  net_config.stats_port = stats_port;
  if (stats_port > 0) {
    std::fprintf(stderr,
                 "serving live introspection on 127.0.0.1:%d "
                 "(GET /metrics -> Prometheus, else JSON snapshot)\n",
                 stats_port);
  }
  if (udp) {
    net_config.transport = net::TransportKind::kUdp;
    net_config.udp_port = static_cast<uint16_t>(udp_port);
    if (loopback_clients >= 1) net_config.udp_client_loops = loopback_clients;
  }

  Table table("proxdet " +
              (scenario_mode ? scenario_arg : DatasetName(config.dataset)));
  if (transported) {
    table.SetHeader({"method", "total", "reports", "probes", "alerts",
                     "region", "match", "bytes_up", "bytes_down", "bytes_x",
                     "saved", "exact"});
  } else if (scenario_mode) {
    table.SetHeader({"method", "total", "reports", "probes", "alerts",
                     "region", "match", "ep/s", "B/user", "exact"});
  } else {
    table.SetHeader({"method", "total", "reports", "probes", "alerts",
                     "region", "match", "server_cpu_s", "exact"});
  }
  CommStats total;
  net::NetRunStats last_net;
  for (const Method method : methods) {
    if (transported) {
      const net::TransportedRunResult t =
          net::RunTransportedMethod(method, workload, net_config);
      total += t.run.stats;
      last_net = t.net;
      const uint64_t saved =
          t.net.batch_saved_bytes + t.net.compress_saved_bytes;
      table.AddRow(
          {MethodName(method), std::to_string(t.run.stats.TotalMessages()),
           std::to_string(t.run.stats.reports),
           std::to_string(t.run.stats.probes),
           std::to_string(t.run.stats.alerts),
           std::to_string(t.run.stats.region_installs),
           std::to_string(t.run.stats.match_installs),
           std::to_string(t.net.bytes_up), std::to_string(t.net.bytes_down),
           std::to_string(t.net.bytes_xshard), std::to_string(saved),
           t.run.alerts_exact && t.net.codec_exact && !t.net.failed ? "yes"
                                                                    : "NO"});
    } else if (scenario_mode) {
      WallTimer timer;
      const RunResult r = RunMethod(method, workload);
      const double seconds = timer.ElapsedSeconds();
      // Resident footprint after the run, amortized per user: build-time
      // world + detector steady state (peak RSS never shrinks, so this is
      // an upper bound covering the run's high-water mark).
      const double bytes_per_user =
          static_cast<double>(PeakRssBytes()) /
          static_cast<double>(config.num_users);
      total += r.stats;
      table.AddRow(
          {MethodName(method), std::to_string(r.stats.TotalMessages()),
           std::to_string(r.stats.reports), std::to_string(r.stats.probes),
           std::to_string(r.stats.alerts),
           std::to_string(r.stats.region_installs),
           std::to_string(r.stats.match_installs),
           FormatDouble(config.epochs / std::max(seconds, 1e-9), 1),
           FormatDouble(bytes_per_user, 0), r.alerts_exact ? "yes" : "NO"});
    } else {
      const RunResult r = RunMethod(method, workload);
      total += r.stats;
      table.AddRow({MethodName(method), std::to_string(r.stats.TotalMessages()),
                    std::to_string(r.stats.reports),
                    std::to_string(r.stats.probes),
                    std::to_string(r.stats.alerts),
                    std::to_string(r.stats.region_installs),
                    std::to_string(r.stats.match_installs),
                    FormatDouble(r.stats.server_seconds, 3),
                    r.alerts_exact ? "yes" : "NO"});
    }
  }
  std::printf("%s", csv ? table.ToCsv().c_str() : table.ToString().c_str());

  if (!trace_path.empty()) {
    tracer.Disable();
    if (tracer.WriteChromeTrace(trace_path)) {
      std::fprintf(stderr, "wrote %s (%llu spans)\n", trace_path.c_str(),
                   static_cast<unsigned long long>(tracer.span_count()));
    } else {
      std::fprintf(stderr, "warning: cannot write %s\n", trace_path.c_str());
    }
  }
  if (!report_path.empty()) {
    obs::RunReport report =
        MakeRunReport("cli:" + DatasetName(config.dataset), total);
    report.AddInfo("method", method_arg);
    report.AddInfo("users", std::to_string(config.num_users));
    report.AddInfo("epochs", std::to_string(config.epochs));
    report.AddInfo("seed", std::to_string(config.seed));
    if (transported) {
      report.AddInfo("shards", std::to_string(net_config.shards));
      report.AddInfo("batch", batch ? "on" : "off");
      report.AddInfo("transport", udp ? "udp" : "sim");
      // Per-shard wire sections describe a single run; with several methods
      // the registry still reconciles but a breakdown would be ambiguous.
      if (methods.size() == 1) AddShardNetSections(&report, last_net);
    }
    std::string mismatch;
    const bool reconciled =
        ReconcileWithCommStats(report.metrics(), total, &mismatch);
    report.AddInfo("counters_reconcile", reconciled ? "exact" : mismatch);
    if (report.WriteFile(report_path)) {
      std::fprintf(stderr, "wrote %s\n", report_path.c_str());
    } else {
      std::fprintf(stderr, "warning: cannot write %s\n", report_path.c_str());
    }
  }
  return 0;
}
