// proxdet_cli: run any (dataset, method, parameters) combination from the
// command line and print the communication accounting — the fastest way to
// explore the design space without writing code.
//
// Usage:
//   proxdet_cli [--dataset truck|geolife|beijing|singapore]
//               [--method all|naive|static|fmd|cmd|stripe-kf|stripe-rmf|
//                         stripe-hmm|stripe-r2d2|stripe-linear]
//               [--users N] [--epochs S] [--friends F] [--radius-km R]
//               [--speed V] [--seed SEED] [--csv]
//               [--trace FILE] [--report FILE]
//
// --trace writes the run's epoch-phase spans as Chrome trace_event JSON
// (load in chrome://tracing or ui.perfetto.dev); --report writes a
// RunReport joining the metrics snapshot with the aggregate CommStats.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "bench_support/obs_artifacts.h"
#include "common/table.h"
#include "core/simulation.h"
#include "obs/metrics.h"
#include "obs/trace.h"

using namespace proxdet;

namespace {

std::optional<DatasetKind> ParseDataset(const std::string& s) {
  if (s == "truck") return DatasetKind::kTruck;
  if (s == "geolife" || s == "geo") return DatasetKind::kGeoLife;
  if (s == "beijing" || s == "bj") return DatasetKind::kBeijingTaxi;
  if (s == "singapore" || s == "sg") return DatasetKind::kSingaporeTaxi;
  return std::nullopt;
}

std::optional<Method> ParseMethod(const std::string& s) {
  if (s == "naive") return Method::kNaive;
  if (s == "static") return Method::kStatic;
  if (s == "fmd") return Method::kFmd;
  if (s == "cmd") return Method::kCmd;
  if (s == "stripe-kf") return Method::kStripeKf;
  if (s == "stripe-rmf") return Method::kStripeRmf;
  if (s == "stripe-hmm") return Method::kStripeHmm;
  if (s == "stripe-r2d2") return Method::kStripeR2d2;
  if (s == "stripe-linear") return Method::kStripeLinear;
  return std::nullopt;
}

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--dataset D] [--method M|all] [--users N]\n"
               "          [--epochs S] [--friends F] [--radius-km R]\n"
               "          [--speed V] [--seed X] [--csv]\n"
               "          [--trace FILE] [--report FILE]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  WorkloadConfig config;
  config.dataset = DatasetKind::kTruck;
  config.num_users = 200;
  config.epochs = 150;
  config.avg_friends = 15.0;
  config.alert_radius_m = 5000.0;
  std::string method_arg = "all";
  bool csv = false;
  std::string trace_path;
  std::string report_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--dataset") {
      const auto d = ParseDataset(next());
      if (!d) {
        Usage(argv[0]);
        return 2;
      }
      config.dataset = *d;
    } else if (arg == "--method") {
      method_arg = next();
    } else if (arg == "--users") {
      config.num_users = static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--epochs") {
      config.epochs = std::atoi(next());
    } else if (arg == "--friends") {
      config.avg_friends = std::atof(next());
    } else if (arg == "--radius-km") {
      config.alert_radius_m = std::atof(next()) * 1000.0;
    } else if (arg == "--speed") {
      config.speed_steps = std::atoi(next());
    } else if (arg == "--seed") {
      config.seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--trace") {
      trace_path = next();
    } else if (arg == "--report") {
      report_path = next();
    } else {
      Usage(argv[0]);
      return 2;
    }
  }

  std::vector<Method> methods;
  if (method_arg == "all") {
    methods = PaperMethodSet();
  } else {
    const auto m = ParseMethod(method_arg);
    if (!m) {
      Usage(argv[0]);
      return 2;
    }
    methods.push_back(*m);
  }

  std::fprintf(stderr, "building %s workload: N=%zu S=%d F=%.0f r=%.1fkm V=%d\n",
               DatasetName(config.dataset).c_str(), config.num_users,
               config.epochs, config.avg_friends,
               config.alert_radius_m / 1000.0, config.speed_steps);
  const Workload workload = BuildWorkload(config);
  std::fprintf(stderr, "%zu ground-truth alerts\n",
               workload.ground_truth.size());

  // Scope the metrics (and optionally the tracer) to exactly the runs
  // below so a --report snapshot reconciles with the summed CommStats.
  obs::Metrics().Reset();
  obs::Tracer& tracer = obs::Tracer::Global();
  if (!trace_path.empty()) {
    tracer.Clear();
    tracer.Enable();
  }

  Table table("proxdet " + DatasetName(config.dataset));
  table.SetHeader({"method", "total", "reports", "probes", "alerts",
                   "region", "match", "server_cpu_s", "exact"});
  CommStats total;
  for (const Method method : methods) {
    const RunResult r = RunMethod(method, workload);
    total += r.stats;
    table.AddRow({MethodName(method), std::to_string(r.stats.TotalMessages()),
                  std::to_string(r.stats.reports),
                  std::to_string(r.stats.probes),
                  std::to_string(r.stats.alerts),
                  std::to_string(r.stats.region_installs),
                  std::to_string(r.stats.match_installs),
                  FormatDouble(r.stats.server_seconds, 3),
                  r.alerts_exact ? "yes" : "NO"});
  }
  std::printf("%s", csv ? table.ToCsv().c_str() : table.ToString().c_str());

  if (!trace_path.empty()) {
    tracer.Disable();
    if (tracer.WriteChromeTrace(trace_path)) {
      std::fprintf(stderr, "wrote %s (%llu spans)\n", trace_path.c_str(),
                   static_cast<unsigned long long>(tracer.span_count()));
    } else {
      std::fprintf(stderr, "warning: cannot write %s\n", trace_path.c_str());
    }
  }
  if (!report_path.empty()) {
    obs::RunReport report =
        MakeRunReport("cli:" + DatasetName(config.dataset), total);
    report.AddInfo("method", method_arg);
    report.AddInfo("users", std::to_string(config.num_users));
    report.AddInfo("epochs", std::to_string(config.epochs));
    report.AddInfo("seed", std::to_string(config.seed));
    std::string mismatch;
    const bool reconciled =
        ReconcileWithCommStats(report.metrics(), total, &mismatch);
    report.AddInfo("counters_reconcile", reconciled ? "exact" : mismatch);
    if (report.WriteFile(report_path)) {
      std::fprintf(stderr, "wrote %s\n", report_path.c_str());
    } else {
      std::fprintf(stderr, "warning: cannot write %s\n", report_path.c_str());
    }
  }
  return 0;
}
