// Micro-benchmarks for Predict() latency — the server calls the prediction
// model on every safe-region rebuild (Sec. VI-B reports prediction time).

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "predict/predictor.h"
#include "traj/generator.h"

namespace proxdet {
namespace {

struct Fixture {
  std::vector<Trajectory> training;
  std::vector<Vec2> window;

  Fixture() {
    TrajectoryGenerator gen(SpecFor(DatasetKind::kBeijingTaxi), 99);
    training = gen.Generate(20, 400);
    const Trajectory probe = gen.GenerateOne(100);
    window = probe.RecentWindow(60, 10);
  }
};

Fixture& GetFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

void RunPredictBench(benchmark::State& state, PredictorKind kind) {
  Fixture& f = GetFixture();
  auto model = MakePredictor(kind, 1.0, 7);
  model->Train(f.training);
  const size_t steps = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->Predict(f.window, steps));
  }
}

void BM_PredictLinear(benchmark::State& state) {
  RunPredictBench(state, PredictorKind::kLinear);
}
void BM_PredictRmf(benchmark::State& state) {
  RunPredictBench(state, PredictorKind::kRmf);
}
void BM_PredictKalman(benchmark::State& state) {
  RunPredictBench(state, PredictorKind::kKalman);
}
void BM_PredictHmm(benchmark::State& state) {
  RunPredictBench(state, PredictorKind::kHmm);
}
void BM_PredictR2d2(benchmark::State& state) {
  RunPredictBench(state, PredictorKind::kR2d2);
}

BENCHMARK(BM_PredictLinear)->Arg(10)->Arg(30);
BENCHMARK(BM_PredictRmf)->Arg(10)->Arg(30);
BENCHMARK(BM_PredictKalman)->Arg(10)->Arg(30);
BENCHMARK(BM_PredictHmm)->Arg(10)->Arg(30);
BENCHMARK(BM_PredictR2d2)->Arg(10)->Arg(30);

}  // namespace
}  // namespace proxdet
