// Figure 8: communication I/O and server CPU with an increasing number of
// moving objects on the Truck dataset (the paper sweeps 10K..500K on a
// server; we sweep a laptop-scaled range with the same shape: Naive grows
// linearly and dominates, safe-region methods stay well below, and the
// stripe spends more server CPU on prediction than FMD/CMD). Cells fan out
// across the thread pool; note the CPU column is wall-clock and therefore
// the one table that is not bit-stable between runs.

#include <cstdio>

#include "bench/bench_common.h"
#include "bench_support/experiment.h"
#include "bench_support/sweep_runner.h"

using namespace proxdet;

int main() {
  const bool quick = QuickMode();
  const std::vector<size_t> sweep =
      quick ? std::vector<size_t>{50, 100}
            : std::vector<size_t>{100, 200, 400, 800, 1600};
  const std::vector<Method> methods{Method::kNaive, Method::kStatic,
                                    Method::kFmd, Method::kCmd,
                                    Method::kStripeKf};

  SweepRunner runner("fig8", methods);
  for (const size_t n : sweep) {
    WorkloadConfig config = DefaultExperimentConfig(DatasetKind::kTruck);
    config.num_users = n;
    if (quick) config.epochs = 60;
    runner.AddPoint("Truck", std::to_string(n), config);
  }
  const std::vector<std::vector<RunResult>>& results = runner.Run();

  Table io_table("Figure 8(a) - communication I/O vs N (Truck, Stripe+KF)");
  Table cpu_table("Figure 8(b) - server CPU seconds vs N (Truck)");
  std::vector<std::string> header{"N"};
  for (const Method m : methods) header.push_back(MethodName(m));
  io_table.SetHeader(header);
  cpu_table.SetHeader(header);

  for (size_t p = 0; p < sweep.size(); ++p) {
    std::vector<std::string> io_row{std::to_string(sweep[p])};
    std::vector<std::string> cpu_row{std::to_string(sweep[p])};
    for (const RunResult& r : results[p]) {
      io_row.push_back(std::to_string(r.stats.TotalMessages()));
      cpu_row.push_back(FormatDouble(r.stats.server_seconds, 3));
    }
    io_table.AddRow(std::move(io_row));
    cpu_table.AddRow(std::move(cpu_row));
  }
  std::printf("%s\n%s\n", io_table.ToString().c_str(),
              cpu_table.ToString().c_str());
  runner.WriteJson();
  return 0;
}
