// Streaming million-user workload substrate, in one gate. Three parts:
//
// 1. Streaming-vs-materialized parity: every paper method on city-scale
//    scenario workloads at small N, run twice — once against a streaming
//    World (positions generated per epoch inside BeginEpoch, O(active
//    users) memory) and once against the materialized twin (the *same*
//    per-user seeded streams run out to full trajectories up front). The
//    two modes must be bit-exact in alerts, CommStats, rebuild counts and
//    the deterministic obs digest, at 1 and 4 threads in-process and under
//    1- and 2-shard transported runs; the heavy-churn scenario checks the
//    streaming oracle against the dynamic-graph update machinery. The run
//    ABORTS on any mismatch.
//
// 2. Scenario throughput rows: each scenario of the city pack (commuter
//    rush, flash crowd, heavy churn, mixed-modality fleet) at medium N in
//    streaming mode — epochs/s and steady-state heap bytes/user (live
//    allocation high-water mark across build + run), with the materialized
//    twin's build footprint alongside for the memory win.
//
// 3. Million-user cell: the commuter-rush scenario at N=1,000,000 (quick:
//    20,000) streamed end to end through Naive+grid with the oracle sweep
//    disabled. The run ABORTS unless heap bytes/user stays under the
//    committed ceiling and throughput stays above the floor.
//
// Emits BENCH_scale.json (PROXDET_BENCH_JSON: "0" disables, unset/"1"
// writes to the current directory, anything else is the target directory).
// PROXDET_QUICK=1 shrinks to smoke-test size.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench_support/bench_json.h"
#include "bench_support/mem_probe.h"
#include "common/timer.h"
#include "core/detector.h"
#include "core/simulation.h"
#include "exec/thread_pool.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "traj/scenario.h"

// One TU per binary installs the shared counting operator new.
PROXDET_INSTALL_ALLOC_PROBE()

namespace proxdet {
namespace {

// Committed steady-state heap ceiling for streaming scenario runs. The
// budget at N=1M: position ring 12 x 16 B, generator user state ~64 B,
// interest graph ~2 adjacency entries, detector + index per-user state —
// about 450 B/user measured; 1024 leaves headroom without hiding a
// regression back to materialized O(N x epochs) storage (~16 B per user
// per epoch, i.e. thousands per user at city-scale horizons).
constexpr double kBytesPerUserCeiling = 1024.0;

// --- Part 1: streaming-vs-materialized parity -----------------------------

ScenarioSpec ParitySpec(ScenarioKind kind, bool quick) {
  ScenarioSpec spec;
  spec.kind = kind;
  spec.num_users = quick ? 40 : 80;
  spec.epochs = quick ? 24 : 36;
  spec.avg_friends = 3.0;
  spec.alert_radius_m = 400.0;
  spec.seed = 4242;
  return spec;
}

Workload BuildParityWorkload(const ScenarioSpec& spec, bool stream) {
  ScenarioWorkloadConfig config;
  config.scenario = spec;
  config.stream = stream;
  config.compute_ground_truth = true;
  config.training_users = 16;
  config.training_epochs = 60;
  return BuildScenarioWorkload(config);
}

net::NetConfig ShardedConfig(int shards) {
  net::NetConfig config;
  config.shards = shards;
  config.batch_downlink = true;
  config.compress_installs = true;
  return config;
}

bool SameRun(const RunResult& a, const RunResult& b) {
  return a.alerts_exact && b.alerts_exact && a.alert_count == b.alert_count &&
         a.stats == b.stats && a.rebuild_count == b.rebuild_count;
}

// Runs the method with a clean metrics registry and returns the run plus
// the deterministic obs digest — the streaming and materialized modes must
// produce byte-identical digests.
RunResult RunWithDigest(Method method, const Workload& workload,
                        std::string* digest) {
  obs::Metrics().Reset();
  const RunResult result = RunMethod(method, workload);
  *digest = obs::Metrics().Snapshot().DeterministicDigest();
  return result;
}

struct ParityRow {
  ScenarioKind scenario = ScenarioKind::kCommuterRush;
  Method method = Method::kNaive;
  std::string mode;  // "threads" or "shards"
  int value = 0;
  bool exact = false;
};

// --- Part 2: scenario throughput rows -------------------------------------

struct ScenarioRow {
  ScenarioKind scenario = ScenarioKind::kCommuterRush;
  size_t users = 0;
  int epochs = 0;
  double seconds = 0.0;
  double epochs_per_sec = 0.0;
  double bytes_per_user_stream = 0.0;
  double bytes_per_user_materialized = 0.0;
  size_t alert_count = 0;
};

ScenarioWorkloadConfig ThroughputConfig(ScenarioKind kind, size_t users,
                                        int epochs, bool stream) {
  ScenarioWorkloadConfig config;
  ScenarioSpec spec;
  spec.kind = kind;
  spec.num_users = users;
  spec.epochs = epochs;
  spec.avg_friends = 2.0;
  spec.alert_radius_m = 250.0;
  spec.seed = 99;
  config.scenario = spec;
  config.stream = stream;
  // Throughput rows skip the O(E x epochs) oracle sweep; parity is part
  // 1's job at a size where the oracle is affordable.
  config.compute_ground_truth = false;
  config.training_users = 16;
  config.training_epochs = 60;
  return config;
}

// Builds the workload in the given mode, runs Naive+grid over it, and
// reports throughput plus the live-heap high-water mark across build +
// run: the same measurement for both modes, so the bytes/user columns
// differ only by how positions are stored.
ScenarioRow RunScenario(ScenarioWorkloadConfig config, bool stream) {
  config.stream = stream;
  ScenarioRow row;
  row.scenario = config.scenario.kind;
  row.users = config.scenario.num_users;
  row.epochs = config.scenario.epochs;

  const uint64_t live_before = AllocProbe::LiveBytes();
  AllocProbe::ResetPeak();
  {
    const Workload workload = BuildScenarioWorkload(config);
    RegionDetector::Options options;
    options.use_spatial_index = true;
    std::unique_ptr<Detector> detector =
        MakeDetector(Method::kNaive, workload, options);
    WallTimer timer;
    detector->Run(workload.world);
    row.seconds = timer.ElapsedSeconds();
    row.epochs_per_sec = row.epochs / std::max(row.seconds, 1e-9);
    row.alert_count = detector->SortedAlerts().size();
  }
  const uint64_t peak = AllocProbe::PeakLiveBytes();
  const double bytes_per_user =
      static_cast<double>(peak > live_before ? peak - live_before : 0) /
      static_cast<double>(row.users);
  if (stream) {
    row.bytes_per_user_stream = bytes_per_user;
  } else {
    row.bytes_per_user_materialized = bytes_per_user;
  }
  return row;
}

// --- JSON -----------------------------------------------------------------

std::string WriteJson(bool quick, const std::vector<ParityRow>& parity,
                      bool parity_exact,
                      const std::vector<ScenarioRow>& scenarios,
                      const ScenarioRow& million, uint64_t million_peak_rss,
                      double epochs_per_sec_floor) {
  const std::string path = BenchJsonPath("BENCH_scale.json");
  if (path.empty()) return path;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return std::string();
  }
  std::fprintf(f, "{\n  \"figure\": \"scale\",\n  \"quick\": %s,\n",
               quick ? "true" : "false");
  std::fprintf(f, "  \"parity\": [\n");
  for (size_t i = 0; i < parity.size(); ++i) {
    const ParityRow& r = parity[i];
    std::fprintf(f,
                 "    {\"scenario\": \"%s\", \"method\": \"%s\", "
                 "\"mode\": \"%s\", \"value\": %d, \"exact\": %s}%s\n",
                 ScenarioName(r.scenario).c_str(), MethodName(r.method).c_str(),
                 r.mode.c_str(), r.value, r.exact ? "true" : "false",
                 i + 1 == parity.size() ? "" : ",");
  }
  std::fprintf(f, "  ],\n  \"parity_exact\": %s,\n",
               parity_exact ? "true" : "false");
  std::fprintf(f, "  \"scenarios\": [\n");
  for (size_t i = 0; i < scenarios.size(); ++i) {
    const ScenarioRow& r = scenarios[i];
    std::fprintf(
        f,
        "    {\"scenario\": \"%s\", \"users\": %zu, \"epochs\": %d, "
        "\"epochs_per_sec\": %.3f, \"bytes_per_user_stream\": %.1f, "
        "\"bytes_per_user_materialized\": %.1f, \"alerts\": %zu}%s\n",
        ScenarioName(r.scenario).c_str(), r.users, r.epochs, r.epochs_per_sec,
        r.bytes_per_user_stream, r.bytes_per_user_materialized, r.alert_count,
        i + 1 == scenarios.size() ? "" : ",");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(
      f,
      "  \"million\": {\"scenario\": \"%s\", \"users\": %zu, \"epochs\": %d, "
      "\"seconds\": %.2f, \"epochs_per_sec\": %.3f, "
      "\"bytes_per_user\": %.1f, \"peak_rss_bytes\": %llu},\n",
      ScenarioName(million.scenario).c_str(), million.users, million.epochs,
      million.seconds, million.epochs_per_sec, million.bytes_per_user_stream,
      static_cast<unsigned long long>(million_peak_rss));
  std::fprintf(f, "  \"bytes_per_user_ceiling\": %.0f,\n",
               kBytesPerUserCeiling);
  std::fprintf(f, "  \"epochs_per_sec_floor\": %.3f\n}\n",
               epochs_per_sec_floor);
  std::fclose(f);
  return path;
}

int Main() {
  const bool quick = QuickMode();

  // -- Part 1: streaming-vs-materialized parity ----------------------------
  std::printf("== streaming vs materialized parity ==\n");
  // Quick mode keeps one static-graph scenario and the churn scenario
  // (which exercises the streaming oracle against the dynamic-graph
  // update machinery); full mode covers the whole pack.
  const std::vector<ScenarioKind> parity_kinds =
      quick ? std::vector<ScenarioKind>{ScenarioKind::kCommuterRush,
                                        ScenarioKind::kHeavyChurn}
            : AllScenarioKinds();
  const std::vector<Method> methods = PaperMethodSet();
  const std::vector<unsigned> thread_sweep = {1, 4};
  const std::vector<int> shard_sweep = {1, 2};

  std::vector<ParityRow> parity;
  bool parity_exact = true;
  for (const ScenarioKind kind : parity_kinds) {
    const ScenarioSpec spec = ParitySpec(kind, quick);
    const Workload stream = BuildParityWorkload(spec, /*stream=*/true);
    const Workload mat = BuildParityWorkload(spec, /*stream=*/false);
    // The two oracles come from different sweeps (ring replay vs stored
    // trajectories); they must agree before per-method runs mean anything.
    if (stream.GroundTruth() != mat.GroundTruth()) {
      std::fprintf(stderr,
                   "FATAL: %s streaming oracle != materialized oracle\n",
                   ScenarioName(kind).c_str());
      return 1;
    }
    for (const Method method : methods) {
      for (const unsigned threads : thread_sweep) {
        ThreadPool::SetGlobalThreads(threads);
        std::string digest_stream;
        std::string digest_mat;
        const RunResult rs = RunWithDigest(method, stream, &digest_stream);
        const RunResult rm = RunWithDigest(method, mat, &digest_mat);
        ParityRow row;
        row.scenario = kind;
        row.method = method;
        row.mode = "threads";
        row.value = static_cast<int>(threads);
        row.exact = SameRun(rs, rm) && digest_stream == digest_mat;
        parity.push_back(row);
        if (!row.exact) parity_exact = false;
      }
      ThreadPool::SetGlobalThreads(4);
      for (const int shards : shard_sweep) {
        const net::TransportedRunResult ts =
            net::RunTransportedMethod(method, stream, ShardedConfig(shards));
        const net::TransportedRunResult tm =
            net::RunTransportedMethod(method, mat, ShardedConfig(shards));
        ParityRow row;
        row.scenario = kind;
        row.method = method;
        row.mode = "shards";
        row.value = shards;
        row.exact = SameRun(ts.run, tm.run);
        parity.push_back(row);
        if (!row.exact) parity_exact = false;
      }
    }
    std::printf("  %-13s %s\n", ScenarioName(kind).c_str(),
                parity_exact ? "ok" : "MISMATCH");
    std::fflush(stdout);
  }
  if (!parity_exact) {
    for (const ParityRow& row : parity) {
      if (!row.exact) {
        std::fprintf(stderr, "FATAL: %s %s stream != materialized at %s=%d\n",
                     ScenarioName(row.scenario).c_str(),
                     MethodName(row.method).c_str(), row.mode.c_str(),
                     row.value);
      }
    }
    return 1;
  }

  // -- Part 2: scenario throughput rows ------------------------------------
  std::printf("== scenario pack (streaming, Naive+grid) ==\n");
  ThreadPool::SetGlobalThreads(4);
  const size_t row_users = quick ? 2000 : 50000;
  const int row_epochs = quick ? 24 : 40;
  std::vector<ScenarioRow> scenarios;
  for (const ScenarioKind kind : AllScenarioKinds()) {
    const ScenarioWorkloadConfig config =
        ThroughputConfig(kind, row_users, row_epochs, /*stream=*/true);
    ScenarioRow row = RunScenario(config, /*stream=*/true);
    row.bytes_per_user_materialized =
        RunScenario(config, /*stream=*/false).bytes_per_user_materialized;
    scenarios.push_back(row);
    std::printf(
        "  %-13s N=%6zu  %6.2f epochs/s  stream %7.1f B/user  "
        "materialized %8.1f B/user  alerts %zu\n",
        ScenarioName(kind).c_str(), row.users, row.epochs_per_sec,
        row.bytes_per_user_stream, row.bytes_per_user_materialized,
        row.alert_count);
    std::fflush(stdout);
  }

  // -- Part 3: million-user cell -------------------------------------------
  const size_t million_users = quick ? 20000 : 1000000;
  const int million_epochs = quick ? 12 : 16;
  const double epochs_per_sec_floor = quick ? 0.2 : 0.02;
  std::printf("== million-user streaming cell (N=%zu) ==\n", million_users);
  const ScenarioRow million = RunScenario(
      ThroughputConfig(ScenarioKind::kCommuterRush, million_users,
                       million_epochs, /*stream=*/true),
      /*stream=*/true);
  const uint64_t million_peak_rss = PeakRssBytes();
  std::printf(
      "  N=%zu epochs=%d  %.2f s  %.3f epochs/s  heap %.1f B/user  "
      "peak RSS %.1f MB\n",
      million.users, million.epochs, million.seconds, million.epochs_per_sec,
      million.bytes_per_user_stream,
      static_cast<double>(million_peak_rss) / (1024.0 * 1024.0));
  if (million.bytes_per_user_stream > kBytesPerUserCeiling) {
    std::fprintf(stderr,
                 "FATAL: %.1f heap bytes/user exceeds the committed ceiling "
                 "of %.0f — the streaming substrate regressed toward "
                 "materialized storage.\n",
                 million.bytes_per_user_stream, kBytesPerUserCeiling);
    return 1;
  }
  if (million.epochs_per_sec < epochs_per_sec_floor) {
    std::fprintf(stderr,
                 "FATAL: %.3f epochs/s under the %.3f floor at N=%zu.\n",
                 million.epochs_per_sec, epochs_per_sec_floor, million_users);
    return 1;
  }

  const std::string path =
      WriteJson(quick, parity, parity_exact, scenarios, million,
                million_peak_rss, epochs_per_sec_floor);
  if (!path.empty()) std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace proxdet

int main() { return proxdet::Main(); }
