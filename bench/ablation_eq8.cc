// Ablation: Eq. (8)'s anchor-point clearance approximation versus exact
// segment distances inside Algorithm 2. The approximation is cheaper per
// build but overestimates clearance, so radii are clamped against the exact
// bound (safety is never traded); the question is whether the optimizer's
// degraded view of the slack costs communication.

#include <cstdio>

#include "bench/bench_common.h"
#include "bench_support/experiment.h"
#include "common/timer.h"

using namespace proxdet;

namespace {

struct VariantResult {
  uint64_t total_io = 0;
  double server_seconds = 0.0;
};

VariantResult RunVariant(const Workload& workload, bool use_eq8) {
  std::unique_ptr<Predictor> predictor =
      MakeTrainedPredictor(PredictorKind::kKalman, workload);
  StripePolicy::Options sopts =
      CalibratedStripeOptions(predictor.get(), workload);
  sopts.build.use_eq8_distance = use_eq8;
  RegionDetector detector(
      std::make_unique<StripePolicy>(std::move(predictor), sopts));
  detector.Run(workload.world);
  if (detector.SortedAlerts() != workload.ground_truth) {
    std::fprintf(stderr, "FATAL: ablation variant broke correctness\n");
    std::abort();
  }
  return {detector.stats().TotalMessages(),
          detector.stats().server_seconds};
}

}  // namespace

int main() {
  const bool quick = QuickMode();
  Table table("Ablation (Eq. 8 vs exact clearance) - Stripe+KF");
  table.SetHeader({"dataset", "exact I/O", "eq8 I/O", "exact CPU(s)",
                   "eq8 CPU(s)"});
  for (const DatasetKind dataset :
       {DatasetKind::kTruck, DatasetKind::kBeijingTaxi}) {
    WorkloadConfig config = DefaultExperimentConfig(dataset);
    if (quick) {
      config.num_users = 80;
      config.epochs = 60;
    }
    const Workload workload = BuildWorkload(config);
    const VariantResult exact = RunVariant(workload, false);
    const VariantResult eq8 = RunVariant(workload, true);
    table.AddRow({DatasetName(dataset), std::to_string(exact.total_io),
                  std::to_string(eq8.total_io),
                  FormatDouble(exact.server_seconds, 3),
                  FormatDouble(eq8.server_seconds, 3)});
  }
  std::printf("%s\n", table.ToString().c_str());
  return 0;
}
