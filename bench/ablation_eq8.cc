// Ablation: Eq. (8)'s anchor-point clearance approximation versus exact
// segment distances inside Algorithm 2. The approximation is cheaper per
// build but overestimates clearance, so radii are clamped against the exact
// bound (safety is never traded); the question is whether the optimizer's
// degraded view of the slack costs communication. Both variants of each
// dataset fan out through SweepRunner.

#include <cstdio>

#include "bench/bench_common.h"
#include "bench_support/experiment.h"
#include "bench_support/sweep_runner.h"

using namespace proxdet;

namespace {

RunResult RunVariant(const Workload& workload, bool use_eq8) {
  std::unique_ptr<Predictor> predictor =
      MakeTrainedPredictor(PredictorKind::kKalman, workload);
  StripePolicy::Options sopts =
      CalibratedStripeOptions(predictor.get(), workload);
  sopts.build.use_eq8_distance = use_eq8;
  RegionDetector detector(
      std::make_unique<StripePolicy>(std::move(predictor), sopts));
  detector.Run(workload.world);
  RunResult result;
  result.method = Method::kStripeKf;
  result.stats = detector.stats();
  const std::vector<AlertEvent> alerts = detector.SortedAlerts();
  result.alert_count = alerts.size();
  result.alerts_exact = alerts == workload.ground_truth;
  return result;
}

}  // namespace

int main() {
  const bool quick = QuickMode();
  std::vector<SweepColumn> columns{
      {"exact", [](const Workload& w) { return RunVariant(w, false); }},
      {"eq8", [](const Workload& w) { return RunVariant(w, true); }}};

  SweepRunner runner("ablation_eq8", columns);
  for (const DatasetKind dataset :
       {DatasetKind::kTruck, DatasetKind::kBeijingTaxi}) {
    WorkloadConfig config = DefaultExperimentConfig(dataset);
    if (quick) {
      config.num_users = 80;
      config.epochs = 60;
    }
    runner.AddPoint(DatasetName(dataset), DatasetName(dataset), config);
  }
  const std::vector<std::vector<RunResult>>& results = runner.Run();

  Table table("Ablation (Eq. 8 vs exact clearance) - Stripe+KF");
  table.SetHeader({"dataset", "exact I/O", "eq8 I/O", "exact CPU(s)",
                   "eq8 CPU(s)"});
  size_t row = 0;
  for (const DatasetKind dataset :
       {DatasetKind::kTruck, DatasetKind::kBeijingTaxi}) {
    const RunResult& exact = results[row][0];
    const RunResult& eq8 = results[row][1];
    table.AddRow({DatasetName(dataset),
                  std::to_string(exact.stats.TotalMessages()),
                  std::to_string(eq8.stats.TotalMessages()),
                  FormatDouble(exact.stats.server_seconds, 3),
                  FormatDouble(eq8.stats.server_seconds, 3)});
    ++row;
  }
  std::printf("%s\n", table.ToString().c_str());
  runner.WriteJson();
  return 0;
}
