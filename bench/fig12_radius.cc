// Figure 12: communication I/O vs alert radius r (2..6 km). Larger radii
// increase probing pressure but also park close pairs inside match
// regions; the taxi datasets react the most (Sec. VI-D.5). Cells fan out
// across the thread pool.

#include <cstdio>

#include "bench/bench_common.h"
#include "bench_support/experiment.h"
#include "bench_support/sweep_runner.h"

using namespace proxdet;

int main() {
  const bool quick = QuickMode();
  const std::vector<double> sweep =
      quick ? std::vector<double>{2000, 6000}
            : std::vector<double>{2000, 3000, 4000, 5000, 6000};

  SweepRunner runner("fig12", PaperMethodSet());
  for (const DatasetKind dataset : AllDatasetKinds()) {
    for (const double r : sweep) {
      WorkloadConfig config = DefaultExperimentConfig(dataset);
      config.alert_radius_m = r;
      if (quick) {
        config.num_users = 80;
        config.epochs = 60;
      }
      runner.AddPoint(DatasetName(dataset), FormatDouble(r / 1000.0, 0) + "km",
                      config);
    }
  }
  runner.Run();
  for (const std::string& group : runner.groups()) {
    const Table table = runner.GroupTable(
        "Figure 12 - I/O vs alert radius r on " + group, "r", group);
    std::printf("%s\n", table.ToString().c_str());
  }
  runner.WriteJson();
  return 0;
}
