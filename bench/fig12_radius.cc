// Figure 12: communication I/O vs alert radius r (2..6 km). Larger radii
// increase probing pressure but also park close pairs inside match
// regions; the taxi datasets react the most (Sec. VI-D.5).

#include <cstdio>

#include "bench/bench_common.h"
#include "bench_support/experiment.h"

using namespace proxdet;

int main() {
  const bool quick = QuickMode();
  const std::vector<double> sweep =
      quick ? std::vector<double>{2000, 6000}
            : std::vector<double>{2000, 3000, 4000, 5000, 6000};
  const std::vector<Method> methods = PaperMethodSet();

  for (const DatasetKind dataset : AllDatasetKinds()) {
    std::vector<std::string> x_values;
    std::vector<std::vector<RunResult>> results;
    for (const double r : sweep) {
      WorkloadConfig config = DefaultExperimentConfig(dataset);
      config.alert_radius_m = r;
      if (quick) {
        config.num_users = 80;
        config.epochs = 60;
      }
      const Workload workload = BuildWorkload(config);
      x_values.push_back(FormatDouble(r / 1000.0, 0) + "km");
      results.push_back(RunSuite(methods, workload));
    }
    const Table table = MakeFigureTable(
        "Figure 12 - I/O vs alert radius r on " + DatasetName(dataset), "r",
        x_values, methods, results);
    std::printf("%s\n", table.ToString().c_str());
  }
  return 0;
}
