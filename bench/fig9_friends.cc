// Figure 9: communication I/O vs average number of friends F (10..50) on
// all four datasets, all eight comparison methods.

#include <cstdio>

#include "bench/bench_common.h"
#include "bench_support/experiment.h"

using namespace proxdet;

int main() {
  const bool quick = QuickMode();
  const std::vector<double> sweep =
      quick ? std::vector<double>{10, 30}
            : std::vector<double>{10, 20, 30, 40, 50};
  const std::vector<Method> methods = PaperMethodSet();

  for (const DatasetKind dataset : AllDatasetKinds()) {
    std::vector<std::string> x_values;
    std::vector<std::vector<RunResult>> results;
    for (const double f : sweep) {
      WorkloadConfig config = DefaultExperimentConfig(dataset);
      config.avg_friends = f;
      if (quick) {
        config.num_users = 80;
        config.epochs = 60;
      }
      const Workload workload = BuildWorkload(config);
      x_values.push_back(FormatDouble(f, 0));
      results.push_back(RunSuite(methods, workload));
    }
    const Table table = MakeFigureTable(
        "Figure 9 - I/O vs avg friends F on " + DatasetName(dataset), "F",
        x_values, methods, results);
    std::printf("%s\n", table.ToString().c_str());
  }
  return 0;
}
