// Figure 9: communication I/O vs average number of friends F (10..50) on
// all four datasets, all eight comparison methods. Cells fan out across the
// thread pool (PROXDET_THREADS); tables are identical for any thread count.

#include <cstdio>

#include "bench/bench_common.h"
#include "bench_support/experiment.h"
#include "bench_support/sweep_runner.h"

using namespace proxdet;

int main() {
  const bool quick = QuickMode();
  const std::vector<double> sweep =
      quick ? std::vector<double>{10, 30}
            : std::vector<double>{10, 20, 30, 40, 50};

  SweepRunner runner("fig9", PaperMethodSet());
  for (const DatasetKind dataset : AllDatasetKinds()) {
    for (const double f : sweep) {
      WorkloadConfig config = DefaultExperimentConfig(dataset);
      config.avg_friends = f;
      if (quick) {
        config.num_users = 80;
        config.epochs = 60;
      }
      runner.AddPoint(DatasetName(dataset), FormatDouble(f, 0), config);
    }
  }
  runner.Run();
  for (const std::string& group : runner.groups()) {
    const Table table = runner.GroupTable(
        "Figure 9 - I/O vs avg friends F on " + group, "F", group);
    std::printf("%s\n", table.ToString().c_str());
  }
  runner.WriteJson();
  return 0;
}
