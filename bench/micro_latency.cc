// Detect->deliver alert latency of the transported serving core: every
// alert frame carries its wire-propagated TraceCtx (origin epoch, event id,
// hop count) and the AlertLatencyTracker matches each engine Alert() call
// to the delivering client frame — virtual seconds under SimNet
// (deterministic, digest-checked by the latency test suite), wall-clock
// seconds under UDP loopback — across induced drop rates, into
// BENCH_latency.json.
//
// Contract checks ride along, micro_net style, and the bench aborts on any
// violation because latency numbers from a broken tracker are void:
//  - parity: every traced cell produces the ground-truth alert stream and
//    the same engine message counts as the untraced in-process run
//    (tracing must not perturb the engine);
//  - reconciliation: tracker deliveries == CommStats alerts to the unit,
//    nothing unmatched, nothing outstanding, and the latency sketch holds
//    exactly one sample per delivered alert;
//  - introspection: the live stats endpoint (--stats-port machinery,
//    NetConfig::stats_port) answers both the Prometheus and the JSON
//    snapshot forms while the serving plane is up.
//
// Emits BENCH_latency.json (PROXDET_BENCH_JSON: "0" disables, unset/"1"
// writes to the current directory, anything else is the target directory).
// PROXDET_QUICK=1 shrinks to smoke-test size. Hosts without socket(2)
// still run the SimNet half and mark "udp_available": false.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench_support/bench_json.h"
#include "bench_support/obs_artifacts.h"
#include "core/simulation.h"
#include "net/latency.h"
#include "net/socket/udp_net.h"
#include "net/transport.h"
#include "obs/metrics.h"

#ifndef _WIN32
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace proxdet {
namespace {

struct LatencyRow {
  Method method = Method::kNaive;
  double drop_rate = 0.0;
  int shards = 0;
  uint64_t alerts = 0;     // Engine Alert() calls (CommStats).
  uint64_t delivered = 0;  // Tracker-matched client deliveries.
  uint64_t retransmits = 0;
  LatencySummary latency;  // Virtual (SimNet) or wall (UDP) sketch.
  bool reconcile_exact = false;
};

struct EndpointProbe {
  bool attempted = false;
  bool metrics_ok = false;
  bool snapshot_ok = false;
};

WorkloadConfig LatencyWorkloadConfig(bool quick) {
  WorkloadConfig config;
  config.dataset = DatasetKind::kTruck;
  config.num_users = quick ? 40 : 120;
  config.epochs = quick ? 50 : 60;
  config.speed_steps = 8;
  config.avg_friends = quick ? 5.0 : 10.0;
  config.alert_radius_m = 6000.0;
  config.seed = 1234;
  config.training_users = quick ? 12 : 24;
  config.training_epochs = 60;
  return config;
}

// SimNet cell: realistic one-way delays so the virtual detect->deliver
// distribution is nondegenerate, plus symmetric induced loss so the retry
// tail shows up in p99/p999.
net::NetConfig SimConfig(int shards, double drop_rate) {
  net::NetConfig config;
  config.shards = shards;
  config.batch_downlink = true;
  config.compress_installs = true;
  config.trace = true;
  config.up.latency_s = 0.02;
  config.up.jitter_s = 0.005;
  config.down.latency_s = 0.02;
  config.down.jitter_s = 0.005;
  config.mesh.latency_s = 0.01;
  config.mesh.jitter_s = 0.002;
  config.up.drop_rate = drop_rate;
  config.down.drop_rate = drop_rate;
  config.mesh.drop_rate = drop_rate;
  config.seed = 20180416;
  return config;
}

net::NetConfig UdpConfig(int shards, double drop_rate) {
  net::NetConfig config;
  config.transport = net::TransportKind::kUdp;
  config.shards = shards;
  config.batch_downlink = true;
  config.compress_installs = true;
  config.trace = true;
  config.udp_drop_rate = drop_rate;
  config.udp_dup_rate = drop_rate > 0.0 ? 0.02 : 0.0;
  config.udp_idle_timeout_s = 120.0;
  config.seed = 20180416;
  return config;
}

#ifndef _WIN32
std::string HttpGet(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}
#endif

/// One traced transported cell, gated FATAL on every latency-plane
/// contract. When `probe` is non-null the cell additionally serves the
/// live stats endpoint on an ephemeral port and polls it (Prometheus +
/// JSON snapshot) while the serving plane is still up.
LatencyRow RunCell(Method method, const Workload& workload,
                   net::NetConfig config, const RunResult& direct,
                   double drop_rate, EndpointProbe* probe) {
  obs::Metrics().Reset();
  const bool wall = config.transport == net::TransportKind::kUdp;
  if (probe != nullptr) config.stats_port = 0;  // Kernel-chosen ephemeral.

  auto detector = MakeDetector(method, workload);
  net::TransportLink link(workload.world, config);
  detector->set_link(&link);
  detector->Run(workload.world);
  detector->set_link(nullptr);

  std::vector<AlertEvent> alerts = link.ClientAlerts();
  SortAlerts(&alerts);
  const bool alerts_exact = alerts == workload.GroundTruth();
  const CommStats stats = detector->stats();
  const net::AlertLatencyTracker* tracker = link.latency_tracker();

  LatencyRow row;
  row.method = method;
  row.drop_rate = drop_rate;
  row.shards = config.shards;
  row.alerts = stats.alerts;
  row.delivered = tracker != nullptr ? tracker->delivered() : 0;
  row.retransmits = link.Stats().retransmits;
  row.latency = SummarizeLatency(
      wall ? "net.latency.wall_s" : "net.latency.virtual_s",
      wall ? obs::Kind::kWallClock : obs::Kind::kDeterministic);
  row.reconcile_exact =
      tracker != nullptr && row.delivered == row.alerts &&
      tracker->unmatched() == 0 && tracker->outstanding() == 0 &&
      row.latency.samples == row.delivered;

  if (!alerts_exact || link.Stats().failed ||
      !stats.SameMessageCounts(direct.stats) || !row.reconcile_exact) {
    std::fprintf(
        stderr,
        "FATAL: %s traced cell (drop=%.2f, %s) broke the latency contract "
        "(alerts_exact=%d failed=%d same_counts=%d delivered=%llu "
        "alerts=%llu samples=%llu).\n",
        MethodName(method).c_str(), drop_rate, wall ? "udp" : "sim",
        alerts_exact ? 1 : 0, link.Stats().failed ? 1 : 0,
        stats.SameMessageCounts(direct.stats) ? 1 : 0,
        static_cast<unsigned long long>(row.delivered),
        static_cast<unsigned long long>(row.alerts),
        static_cast<unsigned long long>(row.latency.samples));
    std::exit(1);
  }

#ifndef _WIN32
  if (probe != nullptr && link.stats_port() > 0) {
    probe->attempted = true;
    const std::string metrics = HttpGet(link.stats_port(), "/metrics");
    probe->metrics_ok =
        metrics.find("200 OK") != std::string::npos &&
        metrics.find("net_latency_delivered") != std::string::npos;
    const std::string snapshot = HttpGet(link.stats_port(), "/snapshot");
    probe->snapshot_ok =
        snapshot.find("\"quantiles\"") != std::string::npos &&
        snapshot.find("\"flight_head\"") != std::string::npos;
    if (!probe->metrics_ok || !probe->snapshot_ok) {
      std::fprintf(stderr,
                   "FATAL: live stats endpoint on port %d served a bad "
                   "response (metrics_ok=%d snapshot_ok=%d).\n",
                   link.stats_port(), probe->metrics_ok ? 1 : 0,
                   probe->snapshot_ok ? 1 : 0);
      std::exit(1);
    }
  }
#endif

  std::printf(
      "  %-13s drop=%.2f %s  alerts %6llu  delivered %6llu  retx %6llu  "
      "p50 %7.2f ms  p99 %7.2f ms  p999 %7.2f ms\n",
      MethodName(method).c_str(), drop_rate, wall ? "udp" : "sim",
      static_cast<unsigned long long>(row.alerts),
      static_cast<unsigned long long>(row.delivered),
      static_cast<unsigned long long>(row.retransmits),
      row.latency.p50_s * 1e3, row.latency.p99_s * 1e3,
      row.latency.p999_s * 1e3);
  std::fflush(stdout);
  return row;
}

void WriteRows(std::FILE* f, const std::vector<LatencyRow>& rows) {
  for (size_t i = 0; i < rows.size(); ++i) {
    const LatencyRow& r = rows[i];
    std::fprintf(
        f,
        "    {\"method\": \"%s\", \"drop_rate\": %.2f, \"shards\": %d, "
        "\"alerts\": %llu, \"delivered\": %llu, \"retransmits\": %llu, "
        "\"samples\": %llu, \"p50_s\": %.6f, \"p99_s\": %.6f, "
        "\"p999_s\": %.6f, \"reconcile_exact\": %s}%s\n",
        MethodName(r.method).c_str(), r.drop_rate, r.shards,
        static_cast<unsigned long long>(r.alerts),
        static_cast<unsigned long long>(r.delivered),
        static_cast<unsigned long long>(r.retransmits),
        static_cast<unsigned long long>(r.latency.samples), r.latency.p50_s,
        r.latency.p99_s, r.latency.p999_s,
        r.reconcile_exact ? "true" : "false",
        i + 1 == rows.size() ? "" : ",");
  }
}

std::string WriteJson(bool udp_available, const std::vector<LatencyRow>& sim,
                      const std::vector<LatencyRow>& udp,
                      const EndpointProbe& probe) {
  const std::string path = BenchJsonPath("BENCH_latency.json");
  if (path.empty()) return "";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return "";
  }
  std::fprintf(f,
               "{\n  \"figure\": \"latency\",\n  \"udp_available\": %s,\n"
               "  \"stats_endpoint\": {\"attempted\": %s, "
               "\"metrics_ok\": %s, \"snapshot_ok\": %s},\n"
               "  \"virtual\": [\n",
               udp_available ? "true" : "false",
               probe.attempted ? "true" : "false",
               probe.metrics_ok ? "true" : "false",
               probe.snapshot_ok ? "true" : "false");
  WriteRows(f, sim);
  std::fprintf(f, "  ],\n  \"wall\": [\n");
  WriteRows(f, udp);
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return path;
}

int Main() {
  const bool quick = QuickMode();
  const std::vector<double> drops = quick
                                        ? std::vector<double>{0.0, 0.05}
                                        : std::vector<double>{0.0, 0.02, 0.05};
  const std::vector<Method> methods =
      quick ? std::vector<Method>{Method::kNaive, Method::kCmd,
                                  Method::kStripeKf}
            : PaperMethodSet();
  const int shards = 2;

  const WorkloadConfig config = LatencyWorkloadConfig(quick);
  std::printf("latency workload (%zu users, %d epochs)...\n",
              config.num_users, config.epochs);
  const Workload workload = BuildWorkload(config);

  std::printf("SimNet virtual detect->deliver (every method, %d shards)...\n",
              shards);
  std::vector<LatencyRow> sim;
  EndpointProbe probe;
  for (const Method method : methods) {
    const RunResult direct = RunMethod(method, workload);
    for (const double drop : drops) {
      // Poll the live endpoint once, on the first cell.
      EndpointProbe* p = sim.empty() ? &probe : nullptr;
      sim.push_back(
          RunCell(method, workload, SimConfig(shards, drop), direct, drop, p));
    }
  }

  std::vector<LatencyRow> udp;
  const bool udp_available = net::UdpNet::Available();
  if (udp_available) {
    std::printf("UDP loopback wall-clock detect->deliver (cmd)...\n");
    const RunResult direct = RunMethod(Method::kCmd, workload);
    for (const double drop : drops) {
      udp.push_back(RunCell(Method::kCmd, workload, UdpConfig(shards, drop),
                            direct, drop, nullptr));
    }
  } else {
    std::printf("loopback UDP unavailable; skipping the wall-clock half\n");
  }

  const std::string json = WriteJson(udp_available, sim, udp, probe);
  if (!json.empty()) std::printf("wrote %s\n", json.c_str());
  return 0;
}

}  // namespace
}  // namespace proxdet

int main() { return proxdet::Main(); }
