// Micro-benchmark for Algorithm 2 (stripe construction): latency as a
// function of the number of friend constraints and of the prediction
// horizon. This is the dominant server-side cost of the stripe methods
// (Fig. 8's CPU gap between Stripe+KF and FMD/CMD).

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/stripe_builder.h"

namespace proxdet {
namespace {

/// Constraint regions plus the constraint records borrowing them (the
/// builder takes region handles, not copies).
struct FriendSet {
  std::vector<SafeRegionShape> shapes;
  std::vector<StripeFriendConstraint> constraints;
};

FriendSet MakeFriends(Rng* rng, int count) {
  FriendSet out;
  out.shapes.reserve(count);
  for (int i = 0; i < count; ++i) {
    const double angle = rng->Uniform(0, 6.2831853);
    const double dist = rng->Uniform(4000, 20000);
    out.shapes.push_back(
        Circle{{dist * std::cos(angle), dist * std::sin(angle)},
               rng->Uniform(50, 400)});
    out.constraints.push_back(
        {&out.shapes.back(), 3000.0, rng->Uniform(50, 400)});
  }
  return out;
}

void BM_BuildStripe(benchmark::State& state) {
  Rng rng(11);
  const int num_friends = static_cast<int>(state.range(0));
  const int horizon = static_cast<int>(state.range(1));
  StripeBuildConfig config;
  config.sigma = 150.0;
  config.max_horizon = horizon;
  const FriendSet friends = MakeFriends(&rng, num_friends);
  std::vector<Vec2> predicted;
  Vec2 p{0, 0};
  for (int i = 0; i < horizon; ++i) {
    p += Vec2{400.0, rng.Uniform(-100, 100)};
    predicted.push_back(p);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildPredictiveStripe(
        {0, 0}, predicted, friends.constraints, 400.0, config, 0));
  }
}
BENCHMARK(BM_BuildStripe)
    ->Args({0, 10})
    ->Args({10, 10})
    ->Args({30, 10})
    ->Args({30, 20})
    ->Args({50, 20});

void BM_SolveRadiusOnly(benchmark::State& state) {
  std::vector<FriendGap> gaps;
  Rng rng(13);
  for (int i = 0; i < 30; ++i) {
    gaps.push_back({rng.Uniform(7000, 20000), 3000.0, rng.Uniform(50, 400)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SolveStripeRadius(gaps, 10, 150.0, 400.0, 1e9, 1e-3));
  }
}
BENCHMARK(BM_SolveRadiusOnly);

}  // namespace
}  // namespace proxdet
