// Loopback latency/throughput of the real-socket serving core: the full
// detector pipeline over UDP loopback sockets — every client a real
// nonblocking socket, one event loop per shard — reporting frames/s, MB/s
// and p50/p99 round-trip latency (wall-clock obs sketches) across shard
// counts, into BENCH_socket.json.
//
// Contract checks ride along, micro_net style, and the bench aborts on any
// violation because throughput numbers from a broken transport are void:
//  - parity: every paper method over UDP loopback at 0%% injected loss
//    produces the ground-truth alert stream and the same engine message
//    counts as both the in-process run and the SimNet-transported run
//    (SimNet is the oracle; the kernel is just a different wire);
//  - loss: with datagrams induced to drop, the retransmit/dedup layer
//    still delivers the exact alert stream — no lost alerts;
//  - accounting: the obs registry's net.bytes_up/down counters reconcile
//    with CommStats to the unit over real sockets, retransmits included.
//
// Emits BENCH_socket.json (PROXDET_BENCH_JSON: "0" disables, unset/"1"
// writes to the current directory, anything else is the target directory).
// PROXDET_QUICK=1 shrinks to smoke-test size. Hosts without socket(2)
// write {"udp_available": false} and exit 0 — absence of a kernel is not
// a transport bug.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench_support/bench_json.h"
#include "bench_support/obs_artifacts.h"
#include "common/timer.h"
#include "core/simulation.h"
#include "net/socket/udp_net.h"
#include "net/transport.h"
#include "obs/histogram.h"
#include "obs/metrics.h"

namespace proxdet {
namespace {

struct ParityRow {
  Method method = Method::kNaive;
  int shards = 0;
  uint64_t total_messages = 0;
  uint64_t alert_count = 0;
  bool alerts_exact = false;
  bool same_counts_vs_inprocess = false;
  bool same_counts_vs_simnet = false;
};

struct LossRow {
  Method method = Method::kNaive;
  double drop_rate = 0.0;
  uint64_t drops = 0;
  uint64_t retransmits = 0;
  uint64_t dedup_discards = 0;
  bool alerts_exact = false;
};

struct ThroughputRow {
  int shards = 0;
  size_t clients = 0;
  int epochs = 0;
  double seconds = 0.0;
  uint64_t datagrams = 0;
  uint64_t bytes = 0;
  double frames_per_s = 0.0;
  double mb_per_s = 0.0;
  double rtt_p50_s = 0.0;
  double rtt_p99_s = 0.0;
  double rtt_p999_s = 0.0;
  uint64_t rtt_samples = 0;
  bool reconcile_exact = false;
};

WorkloadConfig ParityWorkloadConfig(bool quick) {
  WorkloadConfig config;
  config.dataset = DatasetKind::kTruck;
  config.num_users = quick ? 60 : 150;
  config.epochs = quick ? 20 : 40;
  config.speed_steps = 8;
  config.avg_friends = quick ? 6.0 : 10.0;
  config.alert_radius_m = 6000.0;
  config.seed = 20180416;
  config.training_users = quick ? 16 : 30;
  config.training_epochs = 60;
  return config;
}

WorkloadConfig ThroughputWorkloadConfig(bool quick, size_t clients) {
  WorkloadConfig config;
  config.dataset = DatasetKind::kTruck;
  config.num_users = clients;
  config.epochs = quick ? 6 : 10;
  config.speed_steps = 8;
  config.avg_friends = 6.0;
  config.alert_radius_m = 6000.0;
  config.seed = 20180416;
  config.training_users = 16;
  config.training_epochs = 60;
  return config;
}

net::NetConfig UdpConfig(int shards, double drop_rate = 0.0) {
  net::NetConfig config;
  config.transport = net::TransportKind::kUdp;
  config.shards = shards;
  config.udp_drop_rate = drop_rate;
  config.udp_dup_rate = drop_rate > 0.0 ? 0.05 : 0.0;
  config.udp_idle_timeout_s = 120.0;
  config.seed = 20180416;
  return config;
}

// ---------------------------------------------------------------------------
// (a) Parity: all paper methods, UDP loopback vs in-process vs SimNet.

std::vector<ParityRow> RunParity(const Workload& workload, bool quick) {
  const std::vector<Method> methods =
      quick ? std::vector<Method>{Method::kNaive, Method::kCmd,
                                  Method::kStripeKf}
            : PaperMethodSet();
  const int shards = 2;
  std::vector<ParityRow> rows;
  for (const Method method : methods) {
    const RunResult direct = RunMethod(method, workload);
    net::NetConfig sim_config;
    sim_config.shards = shards;
    const net::TransportedRunResult sim =
        net::RunTransportedMethod(method, workload, sim_config);
    const net::TransportedRunResult udp =
        net::RunTransportedMethod(method, workload, UdpConfig(shards));

    ParityRow row;
    row.method = method;
    row.shards = shards;
    row.total_messages = udp.run.stats.TotalMessages();
    row.alert_count = udp.run.alert_count;
    row.alerts_exact = udp.run.alerts_exact && direct.alerts_exact &&
                       sim.run.alerts_exact;
    row.same_counts_vs_inprocess =
        udp.run.stats.SameMessageCounts(direct.stats) &&
        udp.run.rebuild_count == direct.rebuild_count;
    row.same_counts_vs_simnet =
        udp.run.stats.SameMessageCounts(sim.run.stats) &&
        udp.run.rebuild_count == sim.run.rebuild_count;
    if (!row.alerts_exact || !row.same_counts_vs_inprocess ||
        !row.same_counts_vs_simnet || !udp.net.codec_exact ||
        udp.net.failed) {
      std::fprintf(stderr,
                   "FATAL: %s diverged over UDP loopback (alerts_exact=%d "
                   "vs_inprocess=%d vs_simnet=%d codec=%d failed=%d).\n",
                   MethodName(method).c_str(), row.alerts_exact ? 1 : 0,
                   row.same_counts_vs_inprocess ? 1 : 0,
                   row.same_counts_vs_simnet ? 1 : 0,
                   udp.net.codec_exact ? 1 : 0, udp.net.failed ? 1 : 0);
      std::exit(1);
    }
    rows.push_back(row);
    std::printf("  %-13s shards=%d  msgs %8llu  alerts %6llu  parity ok\n",
                MethodName(method).c_str(), shards,
                static_cast<unsigned long long>(row.total_messages),
                static_cast<unsigned long long>(row.alert_count));
    std::fflush(stdout);
  }
  return rows;
}

// ---------------------------------------------------------------------------
// (b) Induced loss: drop datagrams at the socket boundary, lose no alerts.

std::vector<LossRow> RunLoss(const Workload& workload, bool quick) {
  const std::vector<double> drops = quick ? std::vector<double>{0.05}
                                          : std::vector<double>{0.02, 0.05};
  const Method method = Method::kCmd;
  std::vector<LossRow> rows;
  for (const double drop : drops) {
    const net::TransportedRunResult udp =
        net::RunTransportedMethod(method, workload, UdpConfig(2, drop));
    LossRow row;
    row.method = method;
    row.drop_rate = drop;
    row.drops = udp.net.drops;
    row.retransmits = udp.net.retransmits;
    row.dedup_discards = udp.net.dedup_discards;
    row.alerts_exact = udp.run.alerts_exact;
    if (!row.alerts_exact || udp.net.failed || !udp.net.codec_exact) {
      std::fprintf(stderr,
                   "FATAL: %s lost alerts under %.0f%% induced datagram "
                   "loss — the retransmit layer failed.\n",
                   MethodName(method).c_str(), drop * 100.0);
      std::exit(1);
    }
    if (row.drops == 0 || row.retransmits == 0) {
      std::fprintf(stderr,
                   "FATAL: loss cell at drop=%.2f induced no drops (%llu) "
                   "or no retransmits (%llu) — the injection is dead.\n",
                   drop, static_cast<unsigned long long>(row.drops),
                   static_cast<unsigned long long>(row.retransmits));
      std::exit(1);
    }
    rows.push_back(row);
    std::printf(
        "  %-13s drop=%.2f  dropped %6llu  retx %6llu  dedup %6llu  "
        "alerts exact\n",
        MethodName(method).c_str(), drop,
        static_cast<unsigned long long>(row.drops),
        static_cast<unsigned long long>(row.retransmits),
        static_cast<unsigned long long>(row.dedup_discards));
    std::fflush(stdout);
  }
  return rows;
}

// ---------------------------------------------------------------------------
// (c) Throughput: shard sweep, every client a live socket.

ThroughputRow RunThroughputCell(const Workload& workload, int shards,
                                int epochs) {
  // Scope the wall-clock socket counters and the RTT sketch to this cell.
  obs::Metrics().Reset();
  const Method method = Method::kCmd;
  WallTimer timer;
  const net::TransportedRunResult udp =
      net::RunTransportedMethod(method, workload, UdpConfig(shards));
  ThroughputRow row;
  row.shards = shards;
  row.clients = workload.world.user_count();
  row.epochs = epochs;
  row.seconds = timer.ElapsedSeconds();
  row.datagrams =
      obs::Metrics()
          .GetCounter("net.socket.datagrams_sent", obs::Kind::kWallClock)
          .value();
  row.bytes = obs::Metrics()
                  .GetCounter("net.socket.bytes_sent", obs::Kind::kWallClock)
                  .value();
  // The RTT percentiles come from the shared obs sketch summary — the same
  // helper micro_latency uses for detect->deliver, so both benches report
  // percentiles with identical semantics.
  const LatencySummary rtt =
      SummarizeLatency("net.socket.rtt_s", obs::Kind::kWallClock);
  row.rtt_samples = rtt.samples;
  row.rtt_p50_s = rtt.p50_s;
  row.rtt_p99_s = rtt.p99_s;
  row.rtt_p999_s = rtt.p999_s;
  row.frames_per_s = row.seconds > 0.0 ? row.datagrams / row.seconds : 0.0;
  row.mb_per_s = row.seconds > 0.0 ? row.bytes / 1e6 / row.seconds : 0.0;

  if (!udp.run.alerts_exact || udp.net.failed || !udp.net.codec_exact) {
    std::fprintf(stderr,
                 "FATAL: throughput cell (shards=%d) broke the transport "
                 "contract.\n",
                 shards);
    std::exit(1);
  }
  // The registry's byte counters were fed by real-socket transmissions
  // (retransmits and acks included); they must still reconcile with the
  // engine's CommStats to the unit — same accounting, different wire.
  obs::RunReport report = MakeRunReport("micro_socket:udp_loopback",
                                        udp.run.stats);
  AddShardNetSections(&report, udp.net);
  std::string mismatch;
  row.reconcile_exact =
      ReconcileWithCommStats(report.metrics(), udp.run.stats, &mismatch);
  if (!row.reconcile_exact) {
    std::fprintf(stderr,
                 "FATAL: socket-run metrics disagree with CommStats:\n%s",
                 mismatch.c_str());
    std::exit(1);
  }
  std::printf(
      "  shards=%d clients=%zu  %7.3f s  %9.0f frames/s  %7.2f MB/s  "
      "rtt p50 %6.3f ms  p99 %6.3f ms  (%llu samples)\n",
      shards, row.clients, row.seconds, row.frames_per_s, row.mb_per_s,
      row.rtt_p50_s * 1e3, row.rtt_p99_s * 1e3,
      static_cast<unsigned long long>(row.rtt_samples));
  std::fflush(stdout);
  return row;
}

std::vector<ThroughputRow> RunThroughput(bool quick) {
  const size_t clients = quick ? 200 : 1000;
  const std::vector<int> shard_counts =
      quick ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
  const WorkloadConfig config = ThroughputWorkloadConfig(quick, clients);
  std::printf("building %zu-client throughput workload...\n", clients);
  const Workload workload = BuildWorkload(config);
  std::vector<ThroughputRow> rows;
  for (const int shards : shard_counts) {
    rows.push_back(RunThroughputCell(workload, shards, config.epochs));
  }
  return rows;
}

// ---------------------------------------------------------------------------

std::string WriteJson(bool udp_available, bool epoll,
                      const std::vector<ParityRow>& parity,
                      const std::vector<LossRow>& loss,
                      const std::vector<ThroughputRow>& throughput) {
  const std::string path = BenchJsonPath("BENCH_socket.json");
  if (path.empty()) return "";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return "";
  }
  std::fprintf(f,
               "{\n  \"figure\": \"socket\",\n  \"udp_available\": %s,\n"
               "  \"backend\": \"%s\",\n  \"parity\": [\n",
               udp_available ? "true" : "false", epoll ? "epoll" : "poll");
  for (size_t i = 0; i < parity.size(); ++i) {
    const ParityRow& r = parity[i];
    std::fprintf(
        f,
        "    {\"method\": \"%s\", \"shards\": %d, \"total_messages\": %llu, "
        "\"alert_count\": %llu, \"alerts_exact\": %s, "
        "\"same_counts_vs_inprocess\": %s, \"same_counts_vs_simnet\": %s}%s\n",
        MethodName(r.method).c_str(), r.shards,
        static_cast<unsigned long long>(r.total_messages),
        static_cast<unsigned long long>(r.alert_count),
        r.alerts_exact ? "true" : "false",
        r.same_counts_vs_inprocess ? "true" : "false",
        r.same_counts_vs_simnet ? "true" : "false",
        i + 1 == parity.size() ? "" : ",");
  }
  std::fprintf(f, "  ],\n  \"loss\": [\n");
  for (size_t i = 0; i < loss.size(); ++i) {
    const LossRow& r = loss[i];
    std::fprintf(f,
                 "    {\"method\": \"%s\", \"drop_rate\": %.2f, "
                 "\"drops\": %llu, \"retransmits\": %llu, "
                 "\"dedup_discards\": %llu, \"alerts_exact\": %s}%s\n",
                 MethodName(r.method).c_str(), r.drop_rate,
                 static_cast<unsigned long long>(r.drops),
                 static_cast<unsigned long long>(r.retransmits),
                 static_cast<unsigned long long>(r.dedup_discards),
                 r.alerts_exact ? "true" : "false",
                 i + 1 == loss.size() ? "" : ",");
  }
  std::fprintf(f, "  ],\n  \"throughput\": [\n");
  for (size_t i = 0; i < throughput.size(); ++i) {
    const ThroughputRow& r = throughput[i];
    std::fprintf(
        f,
        "    {\"shards\": %d, \"clients\": %zu, \"epochs\": %d, "
        "\"seconds\": %.6f, \"datagrams\": %llu, \"bytes\": %llu, "
        "\"frames_per_s\": %.0f, \"mb_per_s\": %.3f, \"rtt_p50_s\": %.6f, "
        "\"rtt_p99_s\": %.6f, \"rtt_p999_s\": %.6f, \"rtt_samples\": %llu, "
        "\"reconcile_exact\": %s}%s\n",
        r.shards, r.clients, r.epochs, r.seconds,
        static_cast<unsigned long long>(r.datagrams),
        static_cast<unsigned long long>(r.bytes), r.frames_per_s, r.mb_per_s,
        r.rtt_p50_s, r.rtt_p99_s, r.rtt_p999_s,
        static_cast<unsigned long long>(r.rtt_samples),
        r.reconcile_exact ? "true" : "false",
        i + 1 == throughput.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return path;
}

int Main() {
  const bool quick = QuickMode();
  if (!net::UdpNet::Available()) {
    std::printf("loopback UDP sockets unavailable; writing stub artifact\n");
    const std::string json = WriteJson(false, false, {}, {}, {});
    if (!json.empty()) std::printf("wrote %s\n", json.c_str());
    return 0;
  }
  const bool epoll = [] {
    net::UdpNetConfig probe;
    return net::UdpNet(probe).using_epoll();
  }();
  std::printf("socket backend: %s\n", epoll ? "epoll" : "poll");

  const WorkloadConfig parity_config = ParityWorkloadConfig(quick);
  std::printf("parity workload (%zu users, %d epochs)...\n",
              parity_config.num_users, parity_config.epochs);
  const Workload parity_workload = BuildWorkload(parity_config);

  std::printf("UDP-loopback parity (every method, 2 shards, 0%% loss)...\n");
  const std::vector<ParityRow> parity = RunParity(parity_workload, quick);

  std::printf("induced datagram loss (cmd, 2 shards)...\n");
  const std::vector<LossRow> loss = RunLoss(parity_workload, quick);

  std::printf("loopback throughput sweep (cmd)...\n");
  const std::vector<ThroughputRow> throughput = RunThroughput(quick);

  const std::string json = WriteJson(true, epoll, parity, loss, throughput);
  if (!json.empty()) std::printf("wrote %s\n", json.c_str());
  return 0;
}

}  // namespace
}  // namespace proxdet

int main() { return proxdet::Main(); }
