// Figure 10: communication I/O vs number of steps S (the paper sweeps
// 300..1500; total I/O grows roughly linearly in S for every method).

#include <cstdio>

#include "bench/bench_common.h"
#include "bench_support/experiment.h"

using namespace proxdet;

int main() {
  const bool quick = QuickMode();
  // The paper sweeps 300..1500 (a 1:5 span); we keep the span shape.
  const std::vector<int> sweep = quick ? std::vector<int>{60, 120}
                                       : std::vector<int>{60, 120, 180, 240,
                                                          300};
  const std::vector<Method> methods = PaperMethodSet();

  for (const DatasetKind dataset : AllDatasetKinds()) {
    std::vector<std::string> x_values;
    std::vector<std::vector<RunResult>> results;
    for (const int s : sweep) {
      WorkloadConfig config = DefaultExperimentConfig(dataset);
      config.epochs = s;
      if (quick) config.num_users = 80;
      const Workload workload = BuildWorkload(config);
      x_values.push_back(std::to_string(s));
      results.push_back(RunSuite(methods, workload));
    }
    const Table table = MakeFigureTable(
        "Figure 10 - I/O vs number of steps S on " + DatasetName(dataset),
        "S", x_values, methods, results);
    std::printf("%s\n", table.ToString().c_str());
  }
  return 0;
}
