// Figure 10: communication I/O vs number of steps S (the paper sweeps
// 300..1500; total I/O grows roughly linearly in S for every method).
// Cells fan out across the thread pool (PROXDET_THREADS).

#include <cstdio>

#include "bench/bench_common.h"
#include "bench_support/experiment.h"
#include "bench_support/sweep_runner.h"

using namespace proxdet;

int main() {
  const bool quick = QuickMode();
  // The paper sweeps 300..1500 (a 1:5 span); we keep the span shape.
  const std::vector<int> sweep = quick ? std::vector<int>{60, 120}
                                       : std::vector<int>{60, 120, 180, 240,
                                                          300};

  SweepRunner runner("fig10", PaperMethodSet());
  for (const DatasetKind dataset : AllDatasetKinds()) {
    for (const int s : sweep) {
      WorkloadConfig config = DefaultExperimentConfig(dataset);
      config.epochs = s;
      if (quick) config.num_users = 80;
      runner.AddPoint(DatasetName(dataset), std::to_string(s), config);
    }
  }
  runner.Run();
  for (const std::string& group : runner.groups()) {
    const Table table = runner.GroupTable(
        "Figure 10 - I/O vs number of steps S on " + group, "S", group);
    std::printf("%s\n", table.ToString().c_str());
  }
  runner.WriteJson();
  return 0;
}
