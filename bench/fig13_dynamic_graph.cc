// Figure 13 / Sec. VI-E: dynamic interest-graph updates. E random edges
// are inserted per epoch over a long run (the paper inserts 0..200 per
// epoch for 100 epochs on GeoLife and Singapore Taxi); total I/O should
// grow gracefully with the insertion rate. Each sweep point schedules its
// updates inside its workload customizer with a point-local Rng, so the
// fan-out stays deterministic.

#include <cstdio>

#include "bench/bench_common.h"
#include "bench_support/experiment.h"
#include "bench_support/sweep_runner.h"
#include "common/rng.h"

using namespace proxdet;

int main() {
  const bool quick = QuickMode();
  // Scaled insertion rates: the paper's 0..200/epoch at N=10K corresponds
  // to ~0..8/epoch at our N.
  const std::vector<int> sweep =
      quick ? std::vector<int>{0, 4} : std::vector<int>{0, 2, 4, 8};
  const std::vector<Method> methods{Method::kNaive, Method::kStatic,
                                    Method::kFmd, Method::kCmd,
                                    Method::kStripeKf};

  SweepRunner runner("fig13", methods);
  for (const DatasetKind dataset :
       {DatasetKind::kGeoLife, DatasetKind::kSingaporeTaxi}) {
    for (const int e : sweep) {
      WorkloadConfig config = DefaultExperimentConfig(dataset);
      config.epochs = quick ? 60 : 100;  // Paper: 100 epochs of updates.
      if (quick) config.num_users = 80;
      runner.AddPoint(
          DatasetName(dataset), std::to_string(e), config,
          [e, config](Workload* workload) {
            Rng rng(31337 + e);
            const auto n = static_cast<UserId>(config.num_users);
            for (int epoch = 1; epoch < config.epochs; ++epoch) {
              for (int k = 0; k < e; ++k) {
                const UserId u = static_cast<UserId>(rng.NextIndex(n));
                const UserId w = static_cast<UserId>(rng.NextIndex(n));
                if (u == w) continue;
                workload->world.ScheduleUpdate(
                    {epoch, true, u, w, config.alert_radius_m});
              }
            }
          });
    }
  }
  runner.Run();
  for (const std::string& group : runner.groups()) {
    const Table table = runner.GroupTable(
        "Figure 13 - I/O vs edge insertions per epoch on " + group, "E/epoch",
        group);
    std::printf("%s\n", table.ToString().c_str());
  }
  runner.WriteJson();
  return 0;
}
