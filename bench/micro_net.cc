// Wire-layer cost of the network subsystem: (a) raw encode/decode
// throughput per message kind — frames per second and MB/s over
// representative payloads — and (b) the end-to-end overhead of running a
// detector through net::TransportLink versus in-process, with the
// byte-level up/down totals each method actually puts on the wire (the
// numbers CommStats counts only as abstract messages).
//
// Contract checks ride along, micro_detector style: the transported run
// must keep the engine's message counts bit-exact, match ground truth at
// every injected drop rate, and round-trip every installed region exactly —
// the bench aborts otherwise, because throughput numbers from a broken
// transport are void.
//
// Emits BENCH_net.json (PROXDET_BENCH_JSON: "0" disables, unset/"1" writes
// to the current directory, anything else is the target directory).
// PROXDET_QUICK=1 shrinks to smoke-test size.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench_support/bench_json.h"
#include "bench_support/obs_artifacts.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/simulation.h"
#include "net/transport.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace proxdet {
namespace {

struct CodecRow {
  std::string kind;
  size_t payload_bytes = 0;
  double encode_msgs_per_s = 0.0;
  double encode_mb_per_s = 0.0;
  double decode_msgs_per_s = 0.0;
  double decode_mb_per_s = 0.0;
};

struct TransportRow {
  Method method = Method::kNaive;
  double drop_rate = 0.0;
  double inprocess_seconds = 0.0;
  double transported_seconds = 0.0;
  double overhead_x = 0.0;
  uint64_t bytes_up = 0;
  uint64_t bytes_down = 0;
  uint64_t frames_up = 0;
  uint64_t frames_down = 0;
  uint64_t retransmits = 0;
  uint64_t total_messages = 0;
  bool alerts_exact = false;
};

// ---------------------------------------------------------------------------
// (a) Codec throughput.

std::vector<Vec2> SyntheticPath(Rng& rng, size_t n) {
  std::vector<Vec2> points;
  Vec2 p = {rng.Uniform(0.0, 1e5), rng.Uniform(0.0, 1e5)};
  for (size_t i = 0; i < n; ++i) {
    p.x += rng.Uniform(-300.0, 300.0);
    p.y += rng.Uniform(-300.0, 300.0);
    points.push_back(p);
  }
  return points;
}

template <typename Msg>
CodecRow MeasureCodec(const std::string& kind, const Msg& msg, size_t iters) {
  CodecRow row;
  row.kind = kind;
  const std::vector<uint8_t> payload = net::Encode(msg);
  row.payload_bytes = payload.size();

  WallTimer encode_timer;
  size_t sink = 0;
  for (size_t i = 0; i < iters; ++i) {
    sink += net::Encode(msg).size();  // Defeats dead-code elimination.
  }
  const double encode_s = encode_timer.ElapsedSeconds();

  WallTimer decode_timer;
  Msg out;
  size_t ok = 0;
  for (size_t i = 0; i < iters; ++i) {
    ok += net::Decode(payload, &out) ? 1 : 0;
  }
  const double decode_s = decode_timer.ElapsedSeconds();
  if (ok != iters || sink != iters * payload.size()) {
    std::fprintf(stderr, "FATAL: %s codec failed mid-benchmark.\n",
                 kind.c_str());
    std::exit(1);
  }

  const double mb = static_cast<double>(iters) * payload.size() / 1e6;
  row.encode_msgs_per_s = encode_s > 0.0 ? iters / encode_s : 0.0;
  row.encode_mb_per_s = encode_s > 0.0 ? mb / encode_s : 0.0;
  row.decode_msgs_per_s = decode_s > 0.0 ? iters / decode_s : 0.0;
  row.decode_mb_per_s = decode_s > 0.0 ? mb / decode_s : 0.0;
  return row;
}

std::vector<CodecRow> RunCodecBench(size_t iters) {
  Rng rng(20180416);
  std::vector<CodecRow> rows;

  net::LocationReportMsg report;
  report.user = 12345;
  report.epoch = 500;
  report.position = {54321.0, 12345.0};
  report.window = SyntheticPath(rng, 10);  // The default predictor window.
  rows.push_back(MeasureCodec("location_report", report, iters));

  net::ProbeMsg probe;
  probe.user = 12345;
  probe.epoch = 500;
  rows.push_back(MeasureCodec("probe", probe, iters));

  net::AlertMsg alert;
  alert.user = 12345;
  alert.u = 11111;
  alert.w = 12345;
  alert.epoch = 500;
  rows.push_back(MeasureCodec("alert", alert, iters));

  net::RegionInstallMsg stripe_install;
  stripe_install.user = 12345;
  stripe_install.epoch = 500;
  stripe_install.region =
      Stripe(Polyline(SyntheticPath(rng, 16)), 900.0);  // Typical stripe.
  rows.push_back(MeasureCodec("region_install_stripe", stripe_install, iters));

  net::RegionInstallMsg circle_install;
  circle_install.user = 12345;
  circle_install.epoch = 500;
  circle_install.region = Circle{{54321.0, 12345.0}, 3000.0};
  rows.push_back(MeasureCodec("region_install_circle", circle_install, iters));

  net::MatchInstallMsg match;
  match.user = 12345;
  match.epoch = 500;
  match.op = 0;
  match.u = 11111;
  match.w = 12345;
  match.region = Circle{{54321.0, 12345.0}, 3000.0};
  rows.push_back(MeasureCodec("match_install", match, iters));

  return rows;
}

// ---------------------------------------------------------------------------
// (b) End-to-end transported overhead.

WorkloadConfig NetConfigWorkload(bool quick) {
  WorkloadConfig config;
  config.dataset = DatasetKind::kTruck;
  config.num_users = quick ? 100 : 500;
  config.epochs = quick ? 20 : 100;
  config.speed_steps = 8;
  config.avg_friends = quick ? 6.0 : 15.0;
  config.alert_radius_m = 6000.0;
  config.seed = 20180416;
  config.training_users = quick ? 16 : 40;
  config.training_epochs = quick ? 60 : 120;
  return config;
}

net::NetConfig MakeNetConfig(double drop_rate, int shards = 1,
                             bool batch = false, bool compress = false) {
  net::NetConfig config;
  if (drop_rate > 0.0) {
    config.up.latency_s = 0.01;
    config.up.jitter_s = 0.02;
    config.up.drop_rate = drop_rate;
    config.up.dup_rate = 0.02;
    config.down = config.up;
    config.down.latency_s = 0.015;
    config.mesh = config.up;
    config.mesh.latency_s = 0.002;  // Shards share a rack, clients don't.
  }
  config.shards = shards;
  config.batch_downlink = batch;
  config.compress_installs = compress;
  return config;
}

std::vector<TransportRow> RunTransportBench(const Workload& workload) {
  const std::vector<Method> methods = {Method::kNaive, Method::kCmd,
                                       Method::kStripeKf};
  const std::vector<double> drops = {0.0, 0.05};
  std::vector<TransportRow> rows;
  for (const Method method : methods) {
    WallTimer direct_timer;
    const RunResult direct = RunMethod(method, workload);
    const double direct_s = direct_timer.ElapsedSeconds();
    for (const double drop : drops) {
      WallTimer timer;
      const net::TransportedRunResult transported =
          net::RunTransportedMethod(method, workload, MakeNetConfig(drop));
      TransportRow row;
      row.method = method;
      row.drop_rate = drop;
      row.inprocess_seconds = direct_s;
      row.transported_seconds = timer.ElapsedSeconds();
      row.overhead_x = direct_s > 0.0 ? row.transported_seconds / direct_s : 0.0;
      row.bytes_up = transported.net.bytes_up;
      row.bytes_down = transported.net.bytes_down;
      row.frames_up = transported.net.frames_up;
      row.frames_down = transported.net.frames_down;
      row.retransmits = transported.net.retransmits;
      row.total_messages = transported.run.stats.TotalMessages();
      row.alerts_exact = transported.run.alerts_exact;

      // Contract checks — numbers from a broken transport are void.
      if (!transported.run.alerts_exact || !direct.alerts_exact) {
        std::fprintf(stderr,
                     "FATAL: %s (drop=%.2f) deviated from ground truth over "
                     "the transport.\n",
                     MethodName(method).c_str(), drop);
        std::exit(1);
      }
      if (!transported.run.stats.SameMessageCounts(direct.stats) ||
          transported.run.rebuild_count != direct.rebuild_count) {
        std::fprintf(stderr,
                     "FATAL: %s (drop=%.2f) transported message/rebuild "
                     "counts diverged from the in-process run.\n",
                     MethodName(method).c_str(), drop);
        std::exit(1);
      }
      if (!transported.net.codec_exact || transported.net.failed) {
        std::fprintf(stderr,
                     "FATAL: %s (drop=%.2f) codec round-trip or delivery "
                     "contract broken.\n",
                     MethodName(method).c_str(), drop);
        std::exit(1);
      }
      rows.push_back(row);
      std::printf(
          "  %-11s drop=%.2f  in-proc %7.3f s  transported %7.3f s (%5.1fx)"
          "  up %9llu B  down %9llu B  retx %llu\n",
          MethodName(method).c_str(), drop, row.inprocess_seconds,
          row.transported_seconds, row.overhead_x,
          static_cast<unsigned long long>(row.bytes_up),
          static_cast<unsigned long long>(row.bytes_down),
          static_cast<unsigned long long>(row.retransmits));
      std::fflush(stdout);
    }
  }
  return rows;
}

// ---------------------------------------------------------------------------
// (c) Sharded serving plane: partition counts x downlink disciplines.

struct ShardRow {
  int shards = 1;
  bool batch = false;
  bool compress = false;
  double seconds = 0.0;
  double msgs_per_s = 0.0;
  uint64_t bytes_up = 0;
  uint64_t bytes_down = 0;
  uint64_t bytes_xshard = 0;
  uint64_t frames_up = 0;
  uint64_t frames_down = 0;
  uint64_t batch_frames = 0;
  uint64_t batch_saved_bytes = 0;
  uint64_t compressed_installs = 0;
  uint64_t compress_saved_bytes = 0;
};

std::vector<ShardRow> RunShardBench(const Workload& workload, bool quick) {
  // The stripe-heavy method: region installs dominate the downlink, which
  // is exactly the traffic batching + quantized coding exist to shrink.
  const Method method = Method::kStripeKf;
  const RunResult direct = RunMethod(method, workload);
  std::vector<ShardRow> rows;
  for (const int shards : {1, 2, 4, 8}) {
    for (const bool optimized : {false, true}) {
      WallTimer timer;
      const net::TransportedRunResult r = net::RunTransportedMethod(
          method, workload,
          MakeNetConfig(0.0, shards, optimized, optimized));
      ShardRow row;
      row.shards = shards;
      row.batch = optimized;
      row.compress = optimized;
      row.seconds = timer.ElapsedSeconds();
      row.msgs_per_s =
          row.seconds > 0.0
              ? static_cast<double>(r.run.stats.TotalMessages()) / row.seconds
              : 0.0;
      row.bytes_up = r.net.bytes_up;
      row.bytes_down = r.net.bytes_down;
      row.bytes_xshard = r.net.bytes_xshard;
      row.frames_up = r.net.frames_up;
      row.frames_down = r.net.frames_down;
      row.batch_frames = r.net.batch_frames;
      row.batch_saved_bytes = r.net.batch_saved_bytes;
      row.compressed_installs = r.net.compressed_installs;
      row.compress_saved_bytes = r.net.compress_saved_bytes;

      // Bit-exact parity regardless of partition count or discipline.
      if (!r.run.alerts_exact ||
          !r.run.stats.SameMessageCounts(direct.stats) ||
          r.run.rebuild_count != direct.rebuild_count ||
          !r.net.codec_exact || r.net.failed ||
          r.net.compress_mismatch != 0) {
        std::fprintf(stderr,
                     "FATAL: sharded run (shards=%d batch=%d) broke the "
                     "parity contract.\n",
                     shards, optimized ? 1 : 0);
        std::exit(1);
      }
      rows.push_back(row);
      std::printf(
          "  shards=%d %-9s  %7.3f s  down %9llu B  xshard %8llu B  "
          "frames_down %6llu  batch_saved %7llu B  compress_saved %7llu B\n",
          shards, optimized ? "batched" : "unbatched", row.seconds,
          static_cast<unsigned long long>(row.bytes_down),
          static_cast<unsigned long long>(row.bytes_xshard),
          static_cast<unsigned long long>(row.frames_down),
          static_cast<unsigned long long>(row.batch_saved_bytes),
          static_cast<unsigned long long>(row.compress_saved_bytes));
      std::fflush(stdout);
    }
  }
  // The headline claim: batching + guarded compression cut the downlink by
  // at least a quarter on the stripe-heavy workload. Compared at equal
  // shard count so partitioning effects cancel. The hard 25% bar applies to
  // the benchmark-size workload; the quick smoke config is ack-dominated
  // (too few installs to amortize), so there only strict improvement is
  // required.
  for (size_t i = 0; i + 1 < rows.size(); i += 2) {
    const ShardRow& plain = rows[i];
    const ShardRow& opt = rows[i + 1];
    const uint64_t bar =
        quick ? plain.bytes_down - 1 : (plain.bytes_down * 3) / 4;
    if (opt.bytes_down > bar) {
      std::fprintf(stderr,
                   "FATAL: batched+compressed downlink %llu B is not >=25%% "
                   "below unbatched %llu B (shards=%d).\n",
                   static_cast<unsigned long long>(opt.bytes_down),
                   static_cast<unsigned long long>(plain.bytes_down),
                   plain.shards);
      std::exit(1);
    }
  }
  return rows;
}

// ---------------------------------------------------------------------------

std::string WriteJson(const std::vector<CodecRow>& codec,
                      const std::vector<TransportRow>& transport,
                      const std::vector<ShardRow>& sharding) {
  const std::string path = BenchJsonPath("BENCH_net.json");
  if (path.empty()) return "";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return "";
  }
  std::fprintf(f, "{\n  \"figure\": \"net\",\n  \"codec\": [\n");
  for (size_t i = 0; i < codec.size(); ++i) {
    const CodecRow& r = codec[i];
    std::fprintf(f,
                 "    {\"kind\": \"%s\", \"payload_bytes\": %zu, "
                 "\"encode_msgs_per_s\": %.0f, \"encode_mb_per_s\": %.2f, "
                 "\"decode_msgs_per_s\": %.0f, \"decode_mb_per_s\": %.2f}%s\n",
                 r.kind.c_str(), r.payload_bytes, r.encode_msgs_per_s,
                 r.encode_mb_per_s, r.decode_msgs_per_s, r.decode_mb_per_s,
                 i + 1 == codec.size() ? "" : ",");
  }
  std::fprintf(f, "  ],\n  \"transport\": [\n");
  for (size_t i = 0; i < transport.size(); ++i) {
    const TransportRow& r = transport[i];
    std::fprintf(
        f,
        "    {\"method\": \"%s\", \"drop_rate\": %.2f, "
        "\"inprocess_seconds\": %.6f, \"transported_seconds\": %.6f, "
        "\"overhead_x\": %.2f, \"bytes_up\": %llu, \"bytes_down\": %llu, "
        "\"frames_up\": %llu, \"frames_down\": %llu, \"retransmits\": %llu, "
        "\"total_messages\": %llu, \"alerts_exact\": %s}%s\n",
        MethodName(r.method).c_str(), r.drop_rate, r.inprocess_seconds,
        r.transported_seconds, r.overhead_x,
        static_cast<unsigned long long>(r.bytes_up),
        static_cast<unsigned long long>(r.bytes_down),
        static_cast<unsigned long long>(r.frames_up),
        static_cast<unsigned long long>(r.frames_down),
        static_cast<unsigned long long>(r.retransmits),
        static_cast<unsigned long long>(r.total_messages),
        r.alerts_exact ? "true" : "false",
        i + 1 == transport.size() ? "" : ",");
  }
  std::fprintf(f, "  ],\n  \"sharding\": [\n");
  for (size_t i = 0; i < sharding.size(); ++i) {
    const ShardRow& r = sharding[i];
    std::fprintf(
        f,
        "    {\"shards\": %d, \"batch\": %s, \"compress\": %s, "
        "\"seconds\": %.6f, \"msgs_per_s\": %.0f, \"bytes_up\": %llu, "
        "\"bytes_down\": %llu, \"bytes_xshard\": %llu, \"frames_up\": %llu, "
        "\"frames_down\": %llu, \"batch_frames\": %llu, "
        "\"batch_saved_bytes\": %llu, \"compressed_installs\": %llu, "
        "\"compress_saved_bytes\": %llu}%s\n",
        r.shards, r.batch ? "true" : "false", r.compress ? "true" : "false",
        r.seconds, r.msgs_per_s, static_cast<unsigned long long>(r.bytes_up),
        static_cast<unsigned long long>(r.bytes_down),
        static_cast<unsigned long long>(r.bytes_xshard),
        static_cast<unsigned long long>(r.frames_up),
        static_cast<unsigned long long>(r.frames_down),
        static_cast<unsigned long long>(r.batch_frames),
        static_cast<unsigned long long>(r.batch_saved_bytes),
        static_cast<unsigned long long>(r.compressed_installs),
        static_cast<unsigned long long>(r.compress_saved_bytes),
        i + 1 == sharding.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return path;
}

// One fully-observed transported run: tracer on, metrics scoped to exactly
// this run, then TRACE_net.json (Chrome trace_event spans for the epoch
// phases, the wire codec and SimNet delivery) and REPORT_net.json (metrics
// snapshot joined with CommStats). The registry counters must reconcile
// with CommStats to the unit — messages and bytes — or the bench aborts:
// an observability layer that disagrees with the accounting it mirrors is
// worse than none.
void EmitObsArtifacts(const Workload& workload) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Clear();
  tracer.Enable();
  obs::Metrics().Reset();
  // A fully loaded configuration: two partitions, batched downlink and
  // guarded install compression over a lossy link — the per-shard report
  // sections and the reconcile below then cover every counter the serving
  // plane registers.
  const net::TransportedRunResult observed = net::RunTransportedMethod(
      Method::kStripeKf, workload,
      MakeNetConfig(0.05, /*shards=*/2, /*batch=*/true, /*compress=*/true));
  tracer.Disable();

  obs::RunReport report =
      MakeRunReport("micro_net:transported_stripe_kf", observed.run.stats);
  report.AddInfo("method", MethodName(Method::kStripeKf));
  report.AddInfo("drop_rate", "0.05");
  report.AddInfo("shards", "2");
  report.AddCount("net", "retransmits", observed.net.retransmits);
  report.AddCount("net", "drops", observed.net.drops);
  report.AddCount("net", "duplicates", observed.net.duplicates);
  AddShardNetSections(&report, observed.net);
  std::string mismatch;
  if (!ReconcileWithCommStats(report.metrics(), observed.run.stats,
                              &mismatch)) {
    std::fprintf(stderr,
                 "FATAL: metrics registry disagrees with CommStats:\n%s",
                 mismatch.c_str());
    std::exit(1);
  }
  report.AddInfo("counters_reconcile", "exact");

  const std::string trace = WriteTraceArtifact("TRACE_net.json");
  if (!trace.empty()) {
    std::printf("wrote %s (%llu spans)\n", trace.c_str(),
                static_cast<unsigned long long>(tracer.span_count()));
  }
  const std::string path = WriteReportArtifact(report, "REPORT_net.json");
  if (!path.empty()) std::printf("wrote %s\n", path.c_str());
}

int Main() {
  const bool quick = QuickMode();
  const size_t codec_iters = quick ? 20000 : 500000;

  std::printf("codec throughput (%zu iterations per kind)...\n", codec_iters);
  const std::vector<CodecRow> codec = RunCodecBench(codec_iters);
  for (const CodecRow& r : codec) {
    std::printf(
        "  %-22s %4zu B  encode %10.0f msg/s (%7.2f MB/s)  "
        "decode %10.0f msg/s (%7.2f MB/s)\n",
        r.kind.c_str(), r.payload_bytes, r.encode_msgs_per_s,
        r.encode_mb_per_s, r.decode_msgs_per_s, r.decode_mb_per_s);
  }

  const WorkloadConfig config = NetConfigWorkload(quick);
  std::printf("transported runs (%zu users, %d epochs)...\n", config.num_users,
              config.epochs);
  const Workload workload = BuildWorkload(config);
  const std::vector<TransportRow> transport = RunTransportBench(workload);

  std::printf("sharded serving plane (stripe_kf, 1/2/4/8 shards)...\n");
  const std::vector<ShardRow> sharding = RunShardBench(workload, quick);

  const std::string json = WriteJson(codec, transport, sharding);
  if (!json.empty()) std::printf("wrote %s\n", json.c_str());

  EmitObsArtifacts(workload);
  return 0;
}

}  // namespace
}  // namespace proxdet

int main() { return proxdet::Main(); }
