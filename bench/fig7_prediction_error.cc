// Figure 7: prediction error (meters) of RMF, HMM, R2-D2 and the Kalman
// filter on the four datasets, input length 10, output lengths 10/20/30.
// Also reports mean prediction time (the text of Sec. VI-B) and the
// cross-track sigma the cost model consumes. The (dataset, model) cells
// are independent — each builds its own generator and Rngs — so they fan
// out across the thread pool and reassemble in paper order.

#include <cstdio>

#include "bench/bench_common.h"
#include "bench_support/experiment.h"
#include "common/rng.h"
#include "exec/thread_pool.h"
#include "predict/evaluator.h"
#include "predict/predictor.h"

using namespace proxdet;

int main() {
  const bool quick = QuickMode();
  const size_t train_users = quick ? 16 : 60;
  const size_t test_users = quick ? 8 : 30;
  const size_t ticks = quick ? 300 : 1600;  // Paper: 1,600 timestamps.
  const size_t queries = quick ? 60 : 300;

  const std::vector<DatasetKind> datasets = AllDatasetKinds();
  const std::vector<PredictorKind> kinds{
      PredictorKind::kRmf, PredictorKind::kHmm, PredictorKind::kR2d2,
      PredictorKind::kKalman};

  // One cell per (dataset, model): train + evaluate + calibrate, returning
  // the finished table row.
  const size_t cells = datasets.size() * kinds.size();
  const std::vector<std::vector<std::string>> rows =
      ParallelMap<std::vector<std::string>>(cells, [&](size_t i) {
        const DatasetKind dataset = datasets[i / kinds.size()];
        const PredictorKind kind = kinds[i % kinds.size()];
        TrajectoryGenerator gen(SpecFor(dataset),
                                7000 + static_cast<int>(dataset));
        const std::vector<Trajectory> train = gen.Generate(train_users, ticks);
        const std::vector<Trajectory> test = gen.Generate(test_users, ticks);
        auto model = MakePredictor(kind, 1.0, 42);
        model->Train(train);
        std::vector<std::string> row{PredictorName(kind)};
        double time_us = 0.0;
        for (const size_t out_len : {10u, 20u, 30u}) {
          Rng rng(1000 + static_cast<int>(out_len));
          const PredictionEvaluation eval =
              EvaluatePredictor(model.get(), test, 10, out_len, queries, &rng);
          row.push_back(FormatDouble(eval.mean_error_m, 1));
          time_us = eval.mean_predict_time_us;
        }
        row.push_back(FormatDouble(time_us, 1));
        Rng rng(555);
        row.push_back(FormatDouble(
            CalibrateCrossTrackSigma(model.get(), test, 10, 20, queries, &rng),
            1));
        return row;
      });

  for (size_t d = 0; d < datasets.size(); ++d) {
    Table table("Figure 7 - prediction error on " + DatasetName(datasets[d]) +
                " (input length 10)");
    table.SetHeader({"model", "out=10 err(m)", "out=20 err(m)",
                     "out=30 err(m)", "time(us)", "xtrack sigma(m)"});
    for (size_t k = 0; k < kinds.size(); ++k) {
      table.AddRow(rows[d * kinds.size() + k]);
    }
    std::printf("%s\n", table.ToString().c_str());
  }
  return 0;
}
