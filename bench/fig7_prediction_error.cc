// Figure 7: prediction error (meters) of RMF, HMM, R2-D2 and the Kalman
// filter on the four datasets, input length 10, output lengths 10/20/30.
// Also reports mean prediction time (the text of Sec. VI-B) and the
// cross-track sigma the cost model consumes.

#include <cstdio>

#include "bench/bench_common.h"
#include "bench_support/experiment.h"
#include "common/rng.h"
#include "predict/evaluator.h"
#include "predict/predictor.h"

using namespace proxdet;

int main() {
  const bool quick = QuickMode();
  const size_t train_users = quick ? 16 : 60;
  const size_t test_users = quick ? 8 : 30;
  const size_t ticks = quick ? 300 : 1600;  // Paper: 1,600 timestamps.
  const size_t queries = quick ? 60 : 300;

  for (const DatasetKind dataset : AllDatasetKinds()) {
    TrajectoryGenerator gen(SpecFor(dataset), 7000 + static_cast<int>(dataset));
    const std::vector<Trajectory> train = gen.Generate(train_users, ticks);
    const std::vector<Trajectory> test = gen.Generate(test_users, ticks);

    Table table("Figure 7 - prediction error on " + DatasetName(dataset) +
                " (input length 10)");
    table.SetHeader({"model", "out=10 err(m)", "out=20 err(m)",
                     "out=30 err(m)", "time(us)", "xtrack sigma(m)"});
    for (const PredictorKind kind :
         {PredictorKind::kRmf, PredictorKind::kHmm, PredictorKind::kR2d2,
          PredictorKind::kKalman}) {
      auto model = MakePredictor(kind, 1.0, 42);
      model->Train(train);
      std::vector<std::string> row{PredictorName(kind)};
      double time_us = 0.0;
      for (const size_t out_len : {10u, 20u, 30u}) {
        Rng rng(1000 + static_cast<int>(out_len));
        const PredictionEvaluation eval =
            EvaluatePredictor(model.get(), test, 10, out_len, queries, &rng);
        row.push_back(FormatDouble(eval.mean_error_m, 1));
        time_us = eval.mean_predict_time_us;
      }
      row.push_back(FormatDouble(time_us, 1));
      Rng rng(555);
      row.push_back(FormatDouble(
          CalibrateCrossTrackSigma(model.get(), test, 10, 20, queries, &rng),
          1));
      table.AddRow(std::move(row));
    }
    std::printf("%s\n", table.ToString().c_str());
  }
  return 0;
}
