// Ablation: the match region (Def. 3). Without it, a matched pair reports
// every epoch until it separates; with it, a pair moving together costs
// nothing. The gap widens with alert pressure (dense datasets). The
// (dataset x method x option) cells fan out through SweepRunner.

#include <cstdio>

#include "bench/bench_common.h"
#include "bench_support/experiment.h"
#include "bench_support/sweep_runner.h"

using namespace proxdet;

int main() {
  const bool quick = QuickMode();
  const std::vector<Method> methods{Method::kCmd, Method::kStripeKf};

  // Columns: every method with and without match regions, interleaved so
  // a row reads (with, without) per method.
  std::vector<SweepColumn> columns;
  for (const Method method : methods) {
    RegionDetector::Options without;
    without.use_match_regions = false;
    SweepColumn with_col = MethodColumn(method);
    with_col.label = MethodName(method) + "+mr";
    SweepColumn without_col = MethodColumn(method, without);
    without_col.label = MethodName(method) + "-mr";
    columns.push_back(std::move(with_col));
    columns.push_back(std::move(without_col));
  }

  SweepRunner runner("ablation_match_region", columns);
  for (const DatasetKind dataset :
       {DatasetKind::kTruck, DatasetKind::kSingaporeTaxi}) {
    WorkloadConfig config = DefaultExperimentConfig(dataset);
    if (quick) {
      config.num_users = 80;
      config.epochs = 60;
    }
    runner.AddPoint(DatasetName(dataset), DatasetName(dataset), config);
  }
  const std::vector<std::vector<RunResult>>& results = runner.Run();

  size_t row = 0;
  for (const DatasetKind dataset :
       {DatasetKind::kTruck, DatasetKind::kSingaporeTaxi}) {
    Table table("Ablation (match region) - total I/O on " +
                DatasetName(dataset));
    table.SetHeader({"method", "with match region", "without", "overhead"});
    for (size_t m = 0; m < methods.size(); ++m) {
      const RunResult& a = results[row][2 * m];
      const RunResult& b = results[row][2 * m + 1];
      const double overhead =
          100.0 * (static_cast<double>(b.stats.TotalMessages()) /
                       static_cast<double>(a.stats.TotalMessages()) -
                   1.0);
      table.AddRow({MethodName(methods[m]),
                    std::to_string(a.stats.TotalMessages()),
                    std::to_string(b.stats.TotalMessages()),
                    (overhead >= 0 ? "+" : "") + FormatDouble(overhead, 1) +
                        "%"});
    }
    std::printf("%s\n", table.ToString().c_str());
    ++row;
  }
  runner.WriteJson();
  return 0;
}
