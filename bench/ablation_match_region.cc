// Ablation: the match region (Def. 3). Without it, a matched pair reports
// every epoch until it separates; with it, a pair moving together costs
// nothing. The gap widens with alert pressure (dense datasets).

#include <cstdio>

#include "bench/bench_common.h"
#include "bench_support/experiment.h"

using namespace proxdet;

int main() {
  const bool quick = QuickMode();
  for (const DatasetKind dataset :
       {DatasetKind::kTruck, DatasetKind::kSingaporeTaxi}) {
    WorkloadConfig config = DefaultExperimentConfig(dataset);
    if (quick) {
      config.num_users = 80;
      config.epochs = 60;
    }
    const Workload workload = BuildWorkload(config);
    Table table("Ablation (match region) - total I/O on " +
                DatasetName(dataset));
    table.SetHeader({"method", "with match region", "without", "overhead"});
    for (const Method method : {Method::kCmd, Method::kStripeKf}) {
      RegionDetector::Options with;
      RegionDetector::Options without;
      without.use_match_regions = false;
      const RunResult a = RunMethod(method, workload, with);
      const RunResult b = RunMethod(method, workload, without);
      if (!a.alerts_exact || !b.alerts_exact) {
        std::fprintf(stderr, "FATAL: ablation broke correctness\n");
        return 1;
      }
      const double overhead =
          100.0 * (static_cast<double>(b.stats.TotalMessages()) /
                       static_cast<double>(a.stats.TotalMessages()) -
                   1.0);
      table.AddRow({MethodName(method),
                    std::to_string(a.stats.TotalMessages()),
                    std::to_string(b.stats.TotalMessages()),
                    (overhead >= 0 ? "+" : "") + FormatDouble(overhead, 1) +
                        "%"});
    }
    std::printf("%s\n", table.ToString().c_str());
  }
  return 0;
}
