// Spatial-index win and oracle parity, in one gate. Three parts:
//
// 1. Superlinear sweep: a constant-density synthetic world (area grows
//    with N, so the grid's per-user candidate count stays flat) whose
//    friend count also grows with N (F = N/16, so the exhaustive edge
//    scan grows as N^2). What the index changes is the epoch loop, so the
//    timed quantity is the steady-state per-epoch cost: each (N, path)
//    cell is run at two epoch horizons over the same trajectories and the
//    difference, divided by the extra epochs, cancels the shared O(E log E)
//    per-Run setup (graph copy + edge-list sort) that would otherwise
//    drown the signal. The run ABORTS unless (a) grid and scan are
//    bit-exact (alerts + CommStats) at every N and (b) the grid's
//    per-epoch speedup at the largest N is at least 3x its speedup at the
//    smallest N — the superlinear signature that separates an index from
//    a constant-factor tweak.
//
// 2. Oracle parity matrix: every paper method, grid vs exhaustive scan,
//    at 1/2/4/8 threads in-process and under 1/2/4-shard transported runs
//    (batched + delta-compressed downlink). Alert streams, CommStats and
//    rebuild counts must be bit-exact pairwise; the run ABORTS otherwise.
//
// 3. Allocation probe: a counting global operator new measures allocations
//    inside Run() at two epoch horizons; the difference, divided by the
//    extra epochs, is the steady-state per-epoch allocation count the
//    scratch arenas are supposed to hold near zero (EXPERIMENTS.md cites
//    these numbers).
//
// Emits BENCH_index.json (PROXDET_BENCH_JSON: "0" disables, unset/"1"
// writes to the current directory, anything else is the target directory).
// PROXDET_QUICK=1 shrinks to smoke-test size.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "bench_support/bench_json.h"
#include "bench_support/mem_probe.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/detector.h"
#include "core/simulation.h"
#include "exec/thread_pool.h"
#include "net/transport.h"
#include "obs/metrics.h"

// Allocation probe: the shared bench_support counters, installed into this
// binary's global operator new here (one TU per binary, see mem_probe.h).
PROXDET_INSTALL_ALLOC_PROBE()

// ---------------------------------------------------------------------------

namespace proxdet {
namespace {

// --- Part 1: constant-density synthetic world -----------------------------

// Density is fixed at one user per 500m x 500m; alert radii in [150, 250]m
// keep the per-query candidate count a small constant at every N, while
// F = N/16 makes the exhaustive scan's edge count grow as N^2.
World BuildConstantDensityWorld(size_t users, int epochs, uint64_t seed) {
  Rng rng(seed);
  const double side = std::sqrt(static_cast<double>(users)) * 500.0;
  std::vector<Trajectory> trajectories;
  trajectories.reserve(users);
  for (size_t u = 0; u < users; ++u) {
    std::vector<Vec2> points;
    points.reserve(static_cast<size_t>(epochs) + 1);
    Vec2 p(rng.Uniform(0.0, side), rng.Uniform(0.0, side));
    points.push_back(p);
    for (int t = 0; t < epochs; ++t) {
      p.x = std::clamp(p.x + rng.Uniform(-60.0, 60.0), 0.0, side);
      p.y = std::clamp(p.y + rng.Uniform(-60.0, 60.0), 0.0, side);
      points.push_back(p);
    }
    trajectories.emplace_back(std::move(points), 30.0);
  }
  InterestGraph graph = InterestGraph::Random(
      users, static_cast<double>(users) / 16.0, 150.0, 250.0, &rng);
  return World(std::move(trajectories), std::move(graph), /*speed_steps=*/1,
               epochs);
}

struct SweepRow {
  size_t users = 0;
  size_t edges = 0;
  int epochs_short = 0;
  int epochs_long = 0;
  double scan_epoch_seconds = 0.0;
  double grid_epoch_seconds = 0.0;
  double speedup = 0.0;
  size_t alert_count = 0;
  bool bit_exact = false;
  uint64_t grid_cells_probed = 0;
  uint64_t grid_candidates = 0;
};

// One timed Run on `world` with the given index setting; best of `reps`
// wall-clocks on fresh detectors (outputs are deterministic, so only the
// first rep's results are kept).
struct NaiveRun {
  double seconds = 0.0;
  std::vector<AlertEvent> alerts;
  CommStats stats;
  SpatialIndexStats index;
};

NaiveRun TimeNaive(const World& world, bool use_index, int reps) {
  NaiveRun out;
  for (int rep = 0; rep < reps; ++rep) {
    NaiveDetector::Options options;
    options.use_spatial_index = use_index;
    NaiveDetector detector(options);
    obs::Metrics().Reset();
    WallTimer timer;
    detector.Run(world);
    const double seconds = timer.ElapsedSeconds();
    if (rep == 0) {
      out.seconds = seconds;
      out.alerts = detector.SortedAlerts();
      out.stats = detector.stats();
      out.index = detector.index_stats();
    } else {
      out.seconds = std::min(out.seconds, seconds);
    }
  }
  return out;
}

// --- Part 2: oracle parity matrix -----------------------------------------

struct ParityRow {
  Method method = Method::kNaive;
  std::string mode;  // "threads" or "shards"
  int value = 0;
  bool oracle_exact = false;
};

WorkloadConfig ParityConfig(bool quick) {
  WorkloadConfig config;
  config.dataset = DatasetKind::kTruck;
  config.num_users = quick ? 24 : 40;
  config.epochs = quick ? 24 : 40;
  config.speed_steps = 8;
  config.avg_friends = 6.0;
  config.alert_radius_m = 6000.0;
  config.seed = 77;
  config.training_users = 16;
  config.training_epochs = 60;
  return config;
}

net::NetConfig ShardedConfig(int shards) {
  net::NetConfig config;
  config.shards = shards;
  config.batch_downlink = true;
  config.compress_installs = true;
  return config;
}

bool SameRun(const RunResult& grid, const RunResult& scan) {
  return grid.alerts_exact && scan.alerts_exact &&
         grid.alert_count == scan.alert_count && grid.stats == scan.stats &&
         grid.rebuild_count == scan.rebuild_count;
}

// --- Part 3: allocation probe ---------------------------------------------

struct AllocRow {
  std::string detector;
  int epochs_short = 0;
  int epochs_long = 0;
  uint64_t allocs_short = 0;
  uint64_t allocs_long = 0;
  double allocs_per_epoch_steady = 0.0;
};

uint64_t CountRunAllocs(Detector* detector, const World& world) {
  const uint64_t before = AllocProbe::AllocCount();
  detector->Run(world);
  return AllocProbe::AllocCount() - before;
}

// --- JSON -----------------------------------------------------------------

std::string WriteJson(const std::vector<SweepRow>& sweep,
                      const std::vector<ParityRow>& parity,
                      const std::vector<AllocRow>& allocs, bool oracle_exact,
                      double speedup_ratio) {
  const std::string path = BenchJsonPath("BENCH_index.json");
  if (path.empty()) return "";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return "";
  }
  std::fprintf(f, "{\n  \"figure\": \"index\",\n");
  std::fprintf(f, "  \"oracle_exact\": %s,\n", oracle_exact ? "true" : "false");
  std::fprintf(f, "  \"speedup_ratio_largest_vs_smallest\": %.3f,\n",
               speedup_ratio);
  std::fprintf(f, "  \"sweep\": [\n");
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepRow& r = sweep[i];
    std::fprintf(
        f,
        "    {\"users\": %zu, \"edges\": %zu, \"epochs_short\": %d, "
        "\"epochs_long\": %d, \"scan_epoch_seconds\": %.8f, "
        "\"grid_epoch_seconds\": %.8f, \"speedup\": %.3f, "
        "\"alert_count\": %zu, \"bit_exact\": %s, "
        "\"grid_cells_probed\": %llu, \"grid_candidates\": %llu}%s\n",
        r.users, r.edges, r.epochs_short, r.epochs_long, r.scan_epoch_seconds,
        r.grid_epoch_seconds, r.speedup, r.alert_count,
        r.bit_exact ? "true" : "false",
        static_cast<unsigned long long>(r.grid_cells_probed),
        static_cast<unsigned long long>(r.grid_candidates),
        i + 1 == sweep.size() ? "" : ",");
  }
  std::fprintf(f, "  ],\n  \"parity\": [\n");
  for (size_t i = 0; i < parity.size(); ++i) {
    const ParityRow& r = parity[i];
    std::fprintf(f,
                 "    {\"method\": \"%s\", \"mode\": \"%s\", \"value\": %d, "
                 "\"oracle_exact\": %s}%s\n",
                 MethodName(r.method).c_str(), r.mode.c_str(), r.value,
                 r.oracle_exact ? "true" : "false",
                 i + 1 == parity.size() ? "" : ",");
  }
  std::fprintf(f, "  ],\n  \"alloc\": [\n");
  for (size_t i = 0; i < allocs.size(); ++i) {
    const AllocRow& r = allocs[i];
    std::fprintf(f,
                 "    {\"detector\": \"%s\", \"epochs_short\": %d, "
                 "\"epochs_long\": %d, \"allocs_short\": %llu, "
                 "\"allocs_long\": %llu, \"allocs_per_epoch_steady\": %.2f}%s\n",
                 r.detector.c_str(), r.epochs_short, r.epochs_long,
                 static_cast<unsigned long long>(r.allocs_short),
                 static_cast<unsigned long long>(r.allocs_long),
                 r.allocs_per_epoch_steady, i + 1 == allocs.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return path;
}

int Main() {
  const bool quick = QuickMode();

  // -- Part 1: superlinear sweep -------------------------------------------
  const std::vector<size_t> user_sweep =
      quick ? std::vector<size_t>{250, 500, 2000}
            : std::vector<size_t>{1000, 2000, 4000, 8000};
  const int epochs_short = quick ? 4 : 6;
  const int epochs_long = quick ? 16 : 26;
  const int reps = 3;
  ThreadPool::SetGlobalThreads(4);

  std::vector<SweepRow> sweep;
  std::printf("== superlinear sweep (constant density, F = N/16) ==\n");
  for (const size_t users : user_sweep) {
    // Short and long horizons share trajectories and graph, so their
    // wall-clock difference is exactly (epochs_long - epochs_short) more
    // iterations of the epoch loop under test.
    const World world_long =
        BuildConstantDensityWorld(users, epochs_long, 0xB0B0 + users);
    const World world_short(world_long.trajectories(), world_long.graph(),
                            /*speed_steps=*/1, epochs_short);
    const NaiveRun scan_short = TimeNaive(world_short, false, reps);
    const NaiveRun scan_long = TimeNaive(world_long, false, reps);
    const NaiveRun grid_short = TimeNaive(world_short, true, reps);
    const NaiveRun grid_long = TimeNaive(world_long, true, reps);
    const double denom = epochs_long - epochs_short;
    SweepRow row;
    row.users = users;
    row.edges = world_long.graph().edge_count();
    row.epochs_short = epochs_short;
    row.epochs_long = epochs_long;
    row.scan_epoch_seconds =
        std::max((scan_long.seconds - scan_short.seconds) / denom, 1e-9);
    row.grid_epoch_seconds =
        std::max((grid_long.seconds - grid_short.seconds) / denom, 1e-9);
    row.speedup = row.scan_epoch_seconds / row.grid_epoch_seconds;
    row.alert_count = grid_long.alerts.size();
    row.bit_exact = grid_long.alerts == scan_long.alerts &&
                    grid_long.stats == scan_long.stats &&
                    grid_short.alerts == scan_short.alerts &&
                    grid_short.stats == scan_short.stats;
    row.grid_cells_probed = grid_long.index.cells_probed;
    row.grid_candidates = grid_long.index.candidates;
    sweep.push_back(row);
    std::printf(
        "  N=%6zu  edges=%8zu  scan %8.3f ms/epoch  grid %8.3f ms/epoch  "
        "speedup %7.2fx  alerts %zu  %s\n",
        users, row.edges, row.scan_epoch_seconds * 1e3,
        row.grid_epoch_seconds * 1e3, row.speedup, row.alert_count,
        row.bit_exact ? "bit-exact" : "MISMATCH");
    std::fflush(stdout);
    if (!row.bit_exact) {
      std::fprintf(stderr,
                   "FATAL: grid and exhaustive scan disagree at N=%zu — the "
                   "index broke the bit-exactness contract.\n",
                   users);
      return 1;
    }
  }
  const double speedup_ratio =
      sweep.front().speedup > 0.0 ? sweep.back().speedup / sweep.front().speedup
                                  : 0.0;
  std::printf("  speedup(largest N) / speedup(smallest N) = %.2f\n",
              speedup_ratio);
  if (speedup_ratio < 3.0) {
    std::fprintf(stderr,
                 "FATAL: speedup ratio %.2f < 3.0 — the grid is not winning "
                 "superlinearly; it is a constant-factor tweak, not an "
                 "index.\n",
                 speedup_ratio);
    return 1;
  }

  // -- Part 2: oracle parity matrix ----------------------------------------
  std::printf("== oracle parity: method x threads x shards ==\n");
  const Workload workload = BuildWorkload(ParityConfig(quick));
  const std::vector<Method> methods = PaperMethodSet();
  const std::vector<unsigned> thread_sweep = {1, 2, 4, 8};
  const std::vector<int> shard_sweep = {1, 2, 4};
  RegionDetector::Options grid_opts;
  grid_opts.use_spatial_index = true;
  RegionDetector::Options scan_opts;
  scan_opts.use_spatial_index = false;

  std::vector<ParityRow> parity;
  bool oracle_exact = true;
  for (const Method method : methods) {
    for (const unsigned threads : thread_sweep) {
      ThreadPool::SetGlobalThreads(threads);
      const RunResult grid = RunMethod(method, workload, grid_opts);
      const RunResult scan = RunMethod(method, workload, scan_opts);
      ParityRow row;
      row.method = method;
      row.mode = "threads";
      row.value = static_cast<int>(threads);
      row.oracle_exact = SameRun(grid, scan);
      parity.push_back(row);
      if (!row.oracle_exact) oracle_exact = false;
    }
    ThreadPool::SetGlobalThreads(4);
    for (const int shards : shard_sweep) {
      const net::TransportedRunResult grid = net::RunTransportedMethod(
          method, workload, ShardedConfig(shards), grid_opts);
      const net::TransportedRunResult scan = net::RunTransportedMethod(
          method, workload, ShardedConfig(shards), scan_opts);
      ParityRow row;
      row.method = method;
      row.mode = "shards";
      row.value = shards;
      row.oracle_exact = SameRun(grid.run, scan.run);
      parity.push_back(row);
      if (!row.oracle_exact) oracle_exact = false;
    }
    std::printf("  %-11s %s\n", MethodName(method).c_str(),
                oracle_exact ? "ok" : "MISMATCH");
    std::fflush(stdout);
  }
  if (!oracle_exact) {
    for (const ParityRow& row : parity) {
      if (!row.oracle_exact) {
        std::fprintf(stderr, "FATAL: %s grid != scan at %s=%d\n",
                     MethodName(row.method).c_str(), row.mode.c_str(),
                     row.value);
      }
    }
    return 1;
  }

  // -- Part 3: allocation probe --------------------------------------------
  std::printf("== allocation probe (steady-state per-epoch allocations) ==\n");
  ThreadPool::SetGlobalThreads(4);
  const int alloc_short = quick ? 8 : 15;
  const int alloc_long = quick ? 32 : 60;
  const size_t alloc_users = quick ? 500 : 2000;
  const World world_short =
      BuildConstantDensityWorld(alloc_users, alloc_short, 0xA110C);
  const World world_long =
      BuildConstantDensityWorld(alloc_users, alloc_long, 0xA110C);
  std::vector<AllocRow> allocs;
  for (const bool use_index : {true, false}) {
    NaiveDetector::Options options;
    options.use_spatial_index = use_index;
    AllocRow row;
    row.detector = use_index ? "Naive-grid" : "Naive-scan";
    row.epochs_short = alloc_short;
    row.epochs_long = alloc_long;
    {
      NaiveDetector detector(options);
      row.allocs_short = CountRunAllocs(&detector, world_short);
    }
    {
      NaiveDetector detector(options);
      row.allocs_long = CountRunAllocs(&detector, world_long);
    }
    row.allocs_per_epoch_steady =
        static_cast<double>(row.allocs_long - row.allocs_short) /
        (alloc_long - alloc_short);
    allocs.push_back(row);
  }
  {
    // CMD exercises the region detector's arenas (scan phases, resolve,
    // per-epoch pair check). The workload carries its own epoch horizon,
    // so build two.
    WorkloadConfig short_cfg = ParityConfig(quick);
    short_cfg.epochs = alloc_short;
    WorkloadConfig long_cfg = ParityConfig(quick);
    long_cfg.epochs = alloc_long;
    const Workload wl_short = BuildWorkload(short_cfg);
    const Workload wl_long = BuildWorkload(long_cfg);
    AllocRow row;
    row.detector = "CMD-grid";
    row.epochs_short = alloc_short;
    row.epochs_long = alloc_long;
    {
      const std::unique_ptr<Detector> detector =
          MakeDetector(Method::kCmd, wl_short, grid_opts);
      row.allocs_short = CountRunAllocs(detector.get(), wl_short.world);
    }
    {
      const std::unique_ptr<Detector> detector =
          MakeDetector(Method::kCmd, wl_long, grid_opts);
      row.allocs_long = CountRunAllocs(detector.get(), wl_long.world);
    }
    row.allocs_per_epoch_steady =
        static_cast<double>(row.allocs_long - row.allocs_short) /
        (alloc_long - alloc_short);
    allocs.push_back(row);
  }
  for (const AllocRow& row : allocs) {
    std::printf("  %-10s  %4d epochs: %8llu allocs   %4d epochs: %8llu "
                "allocs   steady %.1f allocs/epoch\n",
                row.detector.c_str(), row.epochs_short,
                static_cast<unsigned long long>(row.allocs_short),
                row.epochs_long,
                static_cast<unsigned long long>(row.allocs_long),
                row.allocs_per_epoch_steady);
  }

  ThreadPool::SetGlobalThreads(ThreadPool::DefaultThreadCount());
  const std::string json = WriteJson(sweep, parity, allocs, oracle_exact,
                                     speedup_ratio);
  if (!json.empty()) std::printf("wrote %s\n", json.c_str());
  return 0;
}

}  // namespace
}  // namespace proxdet

int main() { return proxdet::Main(); }
