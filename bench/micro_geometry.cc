// Micro-benchmarks for the geometric primitives on the hot path of the
// detection engine: containment tests run on every client every epoch,
// region-pair distances on every rebuild.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "geom/polygon.h"
#include "geom/stripe.h"
#include "region/region.h"

namespace proxdet {
namespace {

Stripe RandomStripe(Rng* rng, int anchors) {
  std::vector<Vec2> pts;
  Vec2 p{rng->Uniform(-1000, 1000), rng->Uniform(-1000, 1000)};
  for (int i = 0; i < anchors; ++i) {
    pts.push_back(p);
    p += Vec2{rng->Uniform(-200, 200), rng->Uniform(-200, 200)};
  }
  return Stripe(Polyline(std::move(pts)), rng->Uniform(20, 200));
}

void BM_SegmentSegmentDistance(benchmark::State& state) {
  Rng rng(1);
  const Segment a{{0, 0}, {100, 50}};
  const Segment b{{rng.Uniform(0, 500), rng.Uniform(0, 500)},
                  {rng.Uniform(0, 500), rng.Uniform(0, 500)}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(DistanceSegmentToSegment(a, b));
  }
}
BENCHMARK(BM_SegmentSegmentDistance);

void BM_StripeContains(benchmark::State& state) {
  Rng rng(2);
  const Stripe stripe = RandomStripe(&rng, static_cast<int>(state.range(0)));
  const Vec2 p{rng.Uniform(-1000, 1000), rng.Uniform(-1000, 1000)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(stripe.Contains(p));
  }
}
BENCHMARK(BM_StripeContains)->Arg(2)->Arg(8)->Arg(21);

// The common negative case in a live run: the queried position is nowhere
// near the stripe. The AABB early-reject answers these without touching a
// single segment, so time should be flat in the anchor count (compare with
// BM_StripeContains, which scales linearly).
void BM_StripeContainsFarPoint(benchmark::State& state) {
  Rng rng(2);
  const Stripe stripe = RandomStripe(&rng, static_cast<int>(state.range(0)));
  const Vec2 p{1e6, 1e6};
  for (auto _ : state) {
    benchmark::DoNotOptimize(stripe.Contains(p));
  }
}
BENCHMARK(BM_StripeContainsFarPoint)->Arg(2)->Arg(8)->Arg(21);

void BM_StripeStripeDistance(benchmark::State& state) {
  Rng rng(3);
  const Stripe a = RandomStripe(&rng, static_cast<int>(state.range(0)));
  const Stripe b = RandomStripe(&rng, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.DistanceToStripe(b));
  }
}
BENCHMARK(BM_StripeStripeDistance)->Arg(4)->Arg(11)->Arg(21);

void BM_StripeStripeDistanceEq8(benchmark::State& state) {
  Rng rng(3);
  const Stripe a = RandomStripe(&rng, static_cast<int>(state.range(0)));
  const Stripe b = RandomStripe(&rng, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.ApproxDistanceToStripeEq8(b));
  }
}
BENCHMARK(BM_StripeStripeDistanceEq8)->Arg(4)->Arg(11)->Arg(21);

void BM_PolygonClip(benchmark::State& state) {
  Rng rng(4);
  const ConvexPolygon square = ConvexPolygon::Square({0, 0}, 1000.0);
  const HalfPlane hp{{rng.Uniform(-500, 500), rng.Uniform(-500, 500)},
                     Vec2{rng.Uniform(-1, 1), rng.Uniform(-1, 1)}.Normalized()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(square.ClippedBy(hp));
  }
}
BENCHMARK(BM_PolygonClip);

void BM_PolygonPolygonDistance(benchmark::State& state) {
  const ConvexPolygon a = ConvexPolygon::Square({0, 0}, 100.0);
  const ConvexPolygon b = ConvexPolygon::Square({500, 300}, 150.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.DistanceToPolygon(b));
  }
}
BENCHMARK(BM_PolygonPolygonDistance);

void BM_ShapeMinDistanceVariant(benchmark::State& state) {
  Rng rng(5);
  const SafeRegionShape a = RandomStripe(&rng, 11);
  const SafeRegionShape b = Circle{{500, 500}, 80.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ShapeMinDistance(a, b, 3));
  }
}
BENCHMARK(BM_ShapeMinDistanceVariant);

}  // namespace
}  // namespace proxdet
