// Epoch-loop throughput of the detection engine itself — not the sweep
// harness. PR "parallel experiment engine" fanned out *cells* (method x
// sweep point); this bench measures the in-epoch parallelism inside one
// detector Run(): the SafeRegionExitPhase / MatchRegionPhase /
// PerEpochPairCheck scans and the Naive O(edges) distance scan, all of
// which share the parallel-scan + serial-commit pattern. Each (method,
// users) cell is re-run under a 1/2/4/8-thread global pool; the alert
// stream, CommStats and rebuild counts must be bit-exact across thread
// counts (the run aborts otherwise), and only wall-clock may improve.
//
// Emits BENCH_detector.json (PROXDET_BENCH_JSON: "0" disables, unset/"1"
// writes to the current directory, anything else is the target directory).
// PROXDET_QUICK=1 shrinks to smoke-test size; PROXDET_BENCH_FULL=1 adds
// the 100k-user point.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench_support/bench_json.h"
#include "bench_support/obs_artifacts.h"
#include "common/timer.h"
#include "core/events.h"
#include "core/simulation.h"
#include "geom/simd/simd.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"

namespace proxdet {
namespace {

struct Row {
  Method method = Method::kNaive;
  size_t users = 0;
  int epochs = 0;
  unsigned threads = 0;
  double run_seconds = 0.0;
  double epochs_per_second = 0.0;
  double epochs_per_core = 0.0;  // epochs_per_second / threads.
  double speedup_vs_1t = 1.0;
  // Per-phase wall-clock split of the run (Detector::phase_times()):
  // match-region scan, safe-region exit scan, per-epoch pair check, and
  // the resolve/rebuild queue (probes + region builds).
  double match_region_seconds = 0.0;
  double exit_check_seconds = 0.0;
  double pair_check_seconds = 0.0;
  double rebuild_seconds = 0.0;
  uint64_t total_io = 0;
  uint64_t rebuild_count = 0;
  size_t alert_count = 0;
  bool alerts_exact = false;
};

// Pre-SIMD single-thread throughput of the Stripe+KF engine (the PR 6
// tree, this harness, same workload seeds). The SoA + SIMD hot path must
// beat these by at least kSimdSpeedupFloor or the bench fails: a regression
// back to scalar-ish throughput is a build/dispatch bug, not noise.
struct SimdGatePoint {
  size_t users;
  double baseline_epochs_per_second;
};
constexpr SimdGatePoint kSimdGate[] = {{10000, 6.488}, {30000, 2.145}};
constexpr double kSimdSpeedupFloor = 1.5;

WorkloadConfig DetectorConfig(size_t users, int epochs) {
  WorkloadConfig config;
  config.dataset = DatasetKind::kTruck;
  config.num_users = users;
  config.epochs = epochs;
  config.speed_steps = 8;
  config.avg_friends = 30.0;     // Paper default F.
  config.alert_radius_m = 6000.0;  // Paper default r.
  config.seed = 20180416;
  // Predictor training happens outside the timed Run(); keep it modest so
  // the bench spends its time in the epoch loop under test.
  config.training_users = 40;
  config.training_epochs = 120;
  return config;
}

std::string WriteJson(const std::vector<Row>& rows) {
  const std::string path = BenchJsonPath("BENCH_detector.json");
  if (path.empty()) return "";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return "";
  }
  std::fprintf(f, "{\n  \"figure\": \"detector\",\n  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"method\": \"%s\", \"users\": %zu, \"epochs\": %d, "
        "\"threads\": %u, \"run_seconds\": %.6f, "
        "\"epochs_per_second\": %.3f, \"epochs_per_core\": %.3f, "
        "\"speedup_vs_1t\": %.3f, "
        "\"match_region_seconds\": %.6f, \"exit_check_seconds\": %.6f, "
        "\"pair_check_seconds\": %.6f, \"rebuild_seconds\": %.6f, "
        "\"total_io\": %llu, \"rebuild_count\": %llu, "
        "\"alert_count\": %zu, \"alerts_exact\": %s}%s\n",
        MethodName(r.method).c_str(), r.users, r.epochs, r.threads,
        r.run_seconds, r.epochs_per_second, r.epochs_per_core,
        r.speedup_vs_1t, r.match_region_seconds, r.exit_check_seconds,
        r.pair_check_seconds, r.rebuild_seconds,
        static_cast<unsigned long long>(r.total_io),
        static_cast<unsigned long long>(r.rebuild_count), r.alert_count,
        r.alerts_exact ? "true" : "false",
        i + 1 == rows.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return path;
}

int Main() {
  const bool quick = QuickMode();
  const bool full = [] {
    const char* v = std::getenv("PROXDET_BENCH_FULL");
    return v != nullptr && std::strcmp(v, "0") != 0;
  }();
  std::vector<size_t> user_sweep;
  if (quick) {
    user_sweep = {1000};
  } else {
    user_sweep = {10000, 30000};
    if (full) user_sweep.push_back(100000);
  }
  const int epochs = quick ? 10 : 30;
  const std::vector<Method> methods = {Method::kNaive, Method::kCmd,
                                       Method::kStripeKf};
  const std::vector<unsigned> thread_sweep = {1, 2, 4, 8};

  std::vector<Row> rows;
  for (const size_t users : user_sweep) {
    std::printf("building %zu-user workload (%d epochs)...\n", users, epochs);
    std::fflush(stdout);
    const Workload workload = BuildWorkload(DetectorConfig(users, epochs));
    for (const Method method : methods) {
      Row baseline;
      std::string baseline_digest;
      for (const unsigned threads : thread_sweep) {
        ThreadPool::SetGlobalThreads(threads);
        // Fresh detector per cell: CMD's self-tuning multipliers persist
        // across Run() calls, and training under the cell's own pool keeps
        // every cell self-contained (training is deterministic per the
        // engine contract, so cells differ only in wall-clock).
        const std::unique_ptr<Detector> detector =
            MakeDetector(method, workload);
        obs::Metrics().Reset();  // Scope the registry to this cell.
        WallTimer timer;
        detector->Run(workload.world);
        const std::string metrics_digest =
            obs::Metrics().Snapshot().DeterministicDigest();
        Row row;
        row.method = method;
        row.users = users;
        row.epochs = epochs;
        row.threads = threads;
        row.run_seconds = timer.ElapsedSeconds();
        row.epochs_per_second =
            row.run_seconds > 0.0 ? epochs / row.run_seconds : 0.0;
        row.epochs_per_core = row.epochs_per_second / threads;
        const Detector::PhaseTimes& phases = detector->phase_times();
        row.match_region_seconds = phases.match_region;
        row.exit_check_seconds = phases.exit_check;
        row.pair_check_seconds = phases.pair_check;
        row.rebuild_seconds = phases.rebuild;
        row.total_io = detector->stats().TotalMessages();
        const std::vector<AlertEvent> alerts = detector->SortedAlerts();
        row.alert_count = alerts.size();
        row.alerts_exact = alerts == workload.GroundTruth();
        if (const auto* rd =
                dynamic_cast<const RegionDetector*>(detector.get())) {
          row.rebuild_count = rd->rebuild_count();
        }
        if (!row.alerts_exact) {
          std::fprintf(stderr,
                       "FATAL: %s deviated from ground truth at %u threads "
                       "(%zu users) — the engine broke the correctness "
                       "contract.\n",
                       MethodName(method).c_str(), threads, users);
          return 1;
        }
        if (threads == 1) {
          baseline = row;
          baseline_digest = metrics_digest;
        } else {
          // Bit-exact determinism across thread counts: everything except
          // wall-clock must match the 1-thread run — including the
          // observability layer's deterministic metrics.
          if (metrics_digest != baseline_digest) {
            std::fprintf(stderr,
                         "FATAL: %s at %u threads produced a different "
                         "deterministic-metrics digest than the 1-thread run "
                         "(%zu users) — observability broke determinism.\n",
                         MethodName(method).c_str(), threads, users);
            return 1;
          }
          const bool identical = row.total_io == baseline.total_io &&
                                 row.alert_count == baseline.alert_count &&
                                 row.rebuild_count == baseline.rebuild_count;
          if (!identical) {
            std::fprintf(stderr,
                         "FATAL: %s at %u threads diverged from the 1-thread "
                         "run (%zu users) — determinism contract broken.\n",
                         MethodName(method).c_str(), threads, users);
            return 1;
          }
          row.speedup_vs_1t = row.run_seconds > 0.0
                                  ? baseline.run_seconds / row.run_seconds
                                  : 0.0;
        }
        rows.push_back(row);
        std::printf(
            "  %-11s %7zu users  %u thread%s  %8.3f s  %7.2f epochs/s  "
            "(%.2fx)  [mr %.2f  exit %.2f  pair %.2f  rebuild %.2f]\n",
            MethodName(method).c_str(), users, threads,
            threads == 1 ? " " : "s", rows.back().run_seconds,
            rows.back().epochs_per_second, rows.back().speedup_vs_1t,
            row.match_region_seconds, row.exit_check_seconds,
            row.pair_check_seconds, row.rebuild_seconds);
        std::fflush(stdout);
        // The tentpole's throughput gate: the SoA + SIMD hot path must hold
        // a >= 1.5x single-thread speedup over the pre-SIMD tree on the
        // reference points. Quick mode uses a different workload size, so
        // the reference numbers do not apply there.
        // Scalar-only builds (-DPROXDET_SIMD=OFF, or a self-check fallback)
        // cannot meet a gate defined as a SIMD speedup; they are covered by
        // the bit-exactness checks above, not the throughput floor.
        const bool simd_active =
            simd::ActiveBackend() != simd::Backend::kScalar;
        if (!quick && simd_active && method == Method::kStripeKf &&
            threads == 1) {
          for (const SimdGatePoint& gate : kSimdGate) {
            if (gate.users != users) continue;
            const double floor_eps =
                gate.baseline_epochs_per_second * kSimdSpeedupFloor;
            if (row.epochs_per_second < floor_eps) {
              std::fprintf(stderr,
                           "FATAL: Stripe+KF at %zu users runs %.3f epochs/s "
                           "single-thread — below the SIMD gate of %.3f "
                           "(%.2fx the pre-SIMD baseline %.3f). The batched "
                           "hot path regressed.\n",
                           users, row.epochs_per_second, floor_eps,
                           kSimdSpeedupFloor,
                           gate.baseline_epochs_per_second);
              return 1;
            }
          }
        }
      }
    }
  }
  ThreadPool::SetGlobalThreads(ThreadPool::DefaultThreadCount());
  const std::string json = WriteJson(rows);
  if (!json.empty()) std::printf("wrote %s\n", json.c_str());
  return 0;
}

}  // namespace
}  // namespace proxdet

int main() { return proxdet::Main(); }
