// Ablation: the two calibrations DESIGN.md §2.2 adds on top of the paper's
// cost model —
//   (a) approach_factor: Eq. (4) assumes every friend beelines toward the
//       stripe at full speed; scaling the assumed approach speed down stops
//       the E_m = E_p balance from starving the stripe of radius;
//   (b) per-step sigma: one scalar sigma prices a 2-step stripe and a
//       20-step stripe with the same error scale.
// Rows report total I/O of Stripe+KF under each combination.

#include <cstdio>

#include "bench/bench_common.h"
#include "bench_support/experiment.h"

using namespace proxdet;

namespace {

uint64_t RunVariant(const Workload& workload, double approach_factor,
                    bool per_step_sigma) {
  std::unique_ptr<Predictor> predictor =
      MakeTrainedPredictor(PredictorKind::kKalman, workload);
  StripePolicy::Options sopts =
      CalibratedStripeOptions(predictor.get(), workload);
  sopts.build.approach_factor = approach_factor;
  if (!per_step_sigma) {
    // Collapse the calibration to its mean, as a single-sigma model would.
    double mean = 0.0;
    for (const double s : sopts.build.sigma_per_step) mean += s;
    mean /= static_cast<double>(sopts.build.sigma_per_step.size());
    sopts.build.sigma = mean;
    sopts.build.sigma_per_step.clear();
  }
  RegionDetector detector(
      std::make_unique<StripePolicy>(std::move(predictor), sopts));
  detector.Run(workload.world);
  if (detector.SortedAlerts() != workload.ground_truth) {
    std::fprintf(stderr, "FATAL: ablation variant broke correctness\n");
    std::abort();
  }
  return detector.stats().TotalMessages();
}

}  // namespace

int main() {
  const bool quick = QuickMode();
  for (const DatasetKind dataset :
       {DatasetKind::kTruck, DatasetKind::kBeijingTaxi}) {
    WorkloadConfig config = DefaultExperimentConfig(dataset);
    if (quick) {
      config.num_users = 80;
      config.epochs = 60;
    }
    const Workload workload = BuildWorkload(config);
    Table table("Ablation (cost model) - Stripe+KF total I/O on " +
                DatasetName(dataset));
    table.SetHeader({"approach_factor", "per-step sigma", "scalar sigma"});
    for (const double factor : {1.0, 0.5, 0.25, 0.08}) {
      table.AddRow({FormatDouble(factor, 2),
                    std::to_string(RunVariant(workload, factor, true)),
                    std::to_string(RunVariant(workload, factor, false))});
    }
    std::printf("%s(approach_factor = 1.00 is the literal Eq. (4))\n\n",
                table.ToString().c_str());
  }
  return 0;
}
