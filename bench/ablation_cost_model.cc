// Ablation: the two calibrations DESIGN.md §2.2 adds on top of the paper's
// cost model —
//   (a) approach_factor: Eq. (4) assumes every friend beelines toward the
//       stripe at full speed; scaling the assumed approach speed down stops
//       the E_m = E_p balance from starving the stripe of radius;
//   (b) per-step sigma: one scalar sigma prices a 2-step stripe and a
//       20-step stripe with the same error scale.
// Rows report total I/O of Stripe+KF under each combination; the variant
// cells fan out through SweepRunner.

#include <cstdio>

#include "bench/bench_common.h"
#include "bench_support/experiment.h"
#include "bench_support/sweep_runner.h"

using namespace proxdet;

namespace {

RunResult RunVariant(const Workload& workload, double approach_factor,
                     bool per_step_sigma) {
  std::unique_ptr<Predictor> predictor =
      MakeTrainedPredictor(PredictorKind::kKalman, workload);
  StripePolicy::Options sopts =
      CalibratedStripeOptions(predictor.get(), workload);
  sopts.build.approach_factor = approach_factor;
  if (!per_step_sigma) {
    // Collapse the calibration to its mean, as a single-sigma model would.
    double mean = 0.0;
    for (const double s : sopts.build.sigma_per_step) mean += s;
    mean /= static_cast<double>(sopts.build.sigma_per_step.size());
    sopts.build.sigma = mean;
    sopts.build.sigma_per_step.clear();
  }
  RegionDetector detector(
      std::make_unique<StripePolicy>(std::move(predictor), sopts));
  detector.Run(workload.world);
  RunResult result;
  result.method = Method::kStripeKf;
  result.stats = detector.stats();
  const std::vector<AlertEvent> alerts = detector.SortedAlerts();
  result.alert_count = alerts.size();
  result.alerts_exact = alerts == workload.ground_truth;
  return result;
}

}  // namespace

int main() {
  const bool quick = QuickMode();
  const std::vector<double> factors{1.0, 0.5, 0.25, 0.08};

  // Columns: (approach_factor x sigma mode), per-step first.
  std::vector<SweepColumn> columns;
  for (const double factor : factors) {
    for (const bool per_step : {true, false}) {
      columns.push_back(
          {FormatDouble(factor, 2) + (per_step ? "/per-step" : "/scalar"),
           [factor, per_step](const Workload& workload) {
             return RunVariant(workload, factor, per_step);
           }});
    }
  }

  SweepRunner runner("ablation_cost_model", columns);
  for (const DatasetKind dataset :
       {DatasetKind::kTruck, DatasetKind::kBeijingTaxi}) {
    WorkloadConfig config = DefaultExperimentConfig(dataset);
    if (quick) {
      config.num_users = 80;
      config.epochs = 60;
    }
    runner.AddPoint(DatasetName(dataset), DatasetName(dataset), config);
  }
  const std::vector<std::vector<RunResult>>& results = runner.Run();

  size_t row = 0;
  for (const DatasetKind dataset :
       {DatasetKind::kTruck, DatasetKind::kBeijingTaxi}) {
    Table table("Ablation (cost model) - Stripe+KF total I/O on " +
                DatasetName(dataset));
    table.SetHeader({"approach_factor", "per-step sigma", "scalar sigma"});
    for (size_t fi = 0; fi < factors.size(); ++fi) {
      table.AddRow(
          {FormatDouble(factors[fi], 2),
           std::to_string(results[row][2 * fi].stats.TotalMessages()),
           std::to_string(results[row][2 * fi + 1].stats.TotalMessages())});
    }
    std::printf("%s(approach_factor = 1.00 is the literal Eq. (4))\n\n",
                table.ToString().c_str());
    ++row;
  }
  runner.WriteJson();
  return 0;
}
