#ifndef PROXDET_BENCH_BENCH_COMMON_H_
#define PROXDET_BENCH_BENCH_COMMON_H_

#include <cstdlib>
#include <cstring>

namespace proxdet {

/// PROXDET_QUICK=1 shrinks every figure bench to a smoke-test size (used in
/// CI-style runs); the default sizes are the EXPERIMENTS.md configuration.
inline bool QuickMode() {
  const char* v = std::getenv("PROXDET_QUICK");
  return v != nullptr && std::strcmp(v, "0") != 0;
}

}  // namespace proxdet

#endif  // PROXDET_BENCH_BENCH_COMMON_H_
