// Figure 11: communication I/O vs moving speed V (trajectory steps
// consumed per epoch, 2..16). FMD/CMD degrade steadily with speed; the
// stripe methods rise only mildly on Truck (straight highways keep the
// predicted path valid).

#include <cstdio>

#include "bench/bench_common.h"
#include "bench_support/experiment.h"

using namespace proxdet;

int main() {
  const bool quick = QuickMode();
  const std::vector<int> sweep = quick ? std::vector<int>{4, 8}
                                       : std::vector<int>{2, 4, 8, 12, 16};
  const std::vector<Method> methods = PaperMethodSet();

  for (const DatasetKind dataset : AllDatasetKinds()) {
    std::vector<std::string> x_values;
    std::vector<std::vector<RunResult>> results;
    for (const int v : sweep) {
      WorkloadConfig config = DefaultExperimentConfig(dataset);
      config.speed_steps = v;
      if (quick) {
        config.num_users = 80;
        config.epochs = 60;
      }
      const Workload workload = BuildWorkload(config);
      x_values.push_back(std::to_string(v));
      results.push_back(RunSuite(methods, workload));
    }
    const Table table = MakeFigureTable(
        "Figure 11 - I/O vs moving speed V on " + DatasetName(dataset),
        "V(steps/epoch)", x_values, methods, results);
    std::printf("%s\n", table.ToString().c_str());
  }
  return 0;
}
