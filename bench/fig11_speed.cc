// Figure 11: communication I/O vs moving speed V (trajectory steps
// consumed per epoch, 2..16). FMD/CMD degrade steadily with speed; the
// stripe methods rise only mildly on Truck (straight highways keep the
// predicted path valid). Cells fan out across the thread pool.

#include <cstdio>

#include "bench/bench_common.h"
#include "bench_support/experiment.h"
#include "bench_support/sweep_runner.h"

using namespace proxdet;

int main() {
  const bool quick = QuickMode();
  const std::vector<int> sweep = quick ? std::vector<int>{4, 8}
                                       : std::vector<int>{2, 4, 8, 12, 16};

  SweepRunner runner("fig11", PaperMethodSet());
  for (const DatasetKind dataset : AllDatasetKinds()) {
    for (const int v : sweep) {
      WorkloadConfig config = DefaultExperimentConfig(dataset);
      config.speed_steps = v;
      if (quick) {
        config.num_users = 80;
        config.epochs = 60;
      }
      runner.AddPoint(DatasetName(dataset), std::to_string(v), config);
    }
  }
  runner.Run();
  for (const std::string& group : runner.groups()) {
    const Table table = runner.GroupTable(
        "Figure 11 - I/O vs moving speed V on " + group, "V(steps/epoch)",
        group);
    std::printf("%s\n", table.ToString().c_str());
  }
  runner.WriteJson();
  return 0;
}
